#include "sim/engine.h"

#include <algorithm>

#include "common/barrier.h"
#include "common/fixed.h"
#include "common/simd.h"

namespace sj::sim {

namespace {

// Bit helper for the neuron core's bit-packed axon registers; one
// implementation shared with the router registers (noc/router.h).
inline void bit_set(std::array<u64, 4>& w, u16 p, bool v) {
  noc::Router::bit_set(w, p, v);
}

// Saturating clamp with exact overflow counting: identical result and
// saturation tally to common/fixed.h's saturating_add, but branchless so the
// per-word kernels below stay straight-line code.
inline i64 clamp_count(i64 v, i64 lo, i64 hi, i64& sat) {
  const i64 c = v < lo ? lo : (v > hi ? hi : v);
  sat += (c != v);
  return c;
}

// Masked clamp-narrow over the four 64-lane strips: full mask words take the
// SIMD kernel, partial words walk set bits with the scalar clamp. Returns
// the clamped-lane count. Exact twin of the for_each_masked_strip +
// clamp_count loop it replaces ([lo, hi] within i16 is the caller's gate).
inline i64 masked_clamp_store(const noc::Router::Words& mask, const i32* src, i16* dst,
                              i32 lo, i32 hi) {
  i64 sat = 0;
  for (int wi = 0; wi < noc::Router::kWords; ++wi) {
    u64 word = mask[static_cast<usize>(wi)];
    if (word == 0) continue;
    const int base = wi * 64;
    if (word == ~u64{0}) {
      sat += simd::clamp_store_i16(src + base, dst + base, 64, lo, hi);
    } else {
      while (word != 0) {
        const int p = base + std::countr_zero(word);
        word &= word - 1;
        const i32 v = src[p];
        const i32 c = v < lo ? lo : (v > hi ? hi : v);
        sat += (c != v);
        dst[p] = static_cast<i16>(c);
      }
    }
  }
  return sat;
}

// Masked widen-add-clamp (the in-router PS adder). dst may alias a (the
// consecutive-add case reads and rewrites sum_buf).
inline i64 masked_add_clamp(const noc::Router::Words& mask, const i16* a, const i16* b,
                            i16* dst, i32 lo, i32 hi) {
  i64 sat = 0;
  for (int wi = 0; wi < noc::Router::kWords; ++wi) {
    u64 word = mask[static_cast<usize>(wi)];
    if (word == 0) continue;
    const int base = wi * 64;
    if (word == ~u64{0}) {
      sat += simd::add_clamp_i16(a + base, b + base, dst + base, 64, lo, hi);
    } else {
      while (word != 0) {
        const int p = base + std::countr_zero(word);
        word &= word - 1;
        const i32 v = static_cast<i32>(a[p]) + b[p];
        const i32 c = v < lo ? lo : (v > hi ? hi : v);
        sat += (c != v);
        dst[p] = static_cast<i16>(c);
      }
    }
  }
  return sat;
}

}  // namespace

void SimStats::merge(const SimStats& o) {
  frames += o.frames;
  iterations += o.iterations;
  cycles += o.cycles;
  effective_cycles += o.effective_cycles;
  for (usize i = 0; i < op_neurons.size(); ++i) op_neurons[i] += o.op_neurons[i];
  saturations += o.saturations;
  spikes_fired += o.spikes_fired;
  axon_spikes += o.axon_spikes;
  axon_slots += o.axon_slots;
  noc.merge(o.noc);
}

namespace {

// A donor compile may only be used when the donor's lowered program executes
// the new network verbatim: identical grid, placement, masks and schedule
// shape. CoreWeights and thresholds are the swap payload and may differ —
// the kernels read both live from the new MappedNetwork.
void require_swap_compatible(const MappedNetwork& donor, const MappedNetwork& next) {
  // Architecture first: the donor topology bakes in datapath widths and
  // chip geometry (router-adder saturation, interchip link flags), and the
  // kernels clamp with the new network's widths — they must agree.
  SJ_REQUIRE(donor.arch.identity() == next.arch.identity(),
             "weight swap: architecture parameters changed — remap and recompile instead");
  SJ_REQUIRE(donor.cores.size() == next.cores.size(),
             "weight swap: core count changed — remap and recompile instead");
  SJ_REQUIRE(donor.grid_rows == next.grid_rows && donor.grid_cols == next.grid_cols,
             "weight swap: grid changed — remap and recompile instead");
  SJ_REQUIRE(donor.timesteps == next.timesteps &&
                 donor.output_depth == next.output_depth &&
                 donor.cycles_per_timestep == next.cycles_per_timestep &&
                 donor.schedule.size() == next.schedule.size(),
             "weight swap: schedule shape changed — remap and recompile instead");
  // Same mapper optimization level, even when the op streams happen to
  // coincide: the opt level is part of the served artifact's identity
  // (serve::model_key mixes it), and letting a swap cross levels would
  // alias two pipelines the caches treat as distinct.
  SJ_REQUIRE(donor.opt_level == next.opt_level,
             "weight swap: mapper opt level changed (" +
                 std::to_string(donor.opt_level) + " -> " +
                 std::to_string(next.opt_level) + ") — remap and recompile instead");
  // Same story for the pipeline flag: the donor's pipelined execution tables
  // are reused verbatim, and the flag is part of the served identity.
  SJ_REQUIRE(donor.pipeline == next.pipeline,
             "weight swap: pipeline flag changed (" +
                 std::to_string(donor.pipeline) + " -> " +
                 std::to_string(next.pipeline) + ") — remap and recompile instead");
  // The donor's lowered program replays its own TimedOp stream, so the op
  // streams must match verbatim, not just in length (an equal-length
  // schedule from a different mapper configuration would silently execute
  // the wrong program). Element-wise compare is cheap next to the lowering
  // this path skips.
  for (usize i = 0; i < donor.schedule.size(); ++i) {
    const map::TimedOp& a = donor.schedule[i];
    const map::TimedOp& b = next.schedule[i];
    SJ_REQUIRE(a.cycle == b.cycle && a.core == b.core && a.mask == b.mask && a.op == b.op,
               "weight swap: schedule op " + std::to_string(i) +
                   " changed — remap and recompile instead");
  }
  for (usize c = 0; c < donor.cores.size(); ++c) {
    const map::MappedCore& a = donor.cores[c];
    const map::MappedCore& b = next.cores[c];
    SJ_REQUIRE(a.pos.row == b.pos.row && a.pos.col == b.pos.col && a.filler == b.filler &&
                   a.spiking == b.spiking && a.spike_hold == b.spike_hold &&
                   a.axon_mask == b.axon_mask && a.neuron_mask == b.neuron_mask &&
                   a.spike_mask == b.spike_mask,
               "weight swap: core " + std::to_string(c) +
                   " structure changed — remap and recompile instead");
  }
  // Input injection and readout use the *new* network's slot tables; they
  // must address the same planes the donor program drives.
  const auto slots_eq = [](const std::vector<std::vector<Slot>>& x,
                           const std::vector<std::vector<Slot>>& y) {
    if (x.size() != y.size()) return false;
    for (usize i = 0; i < x.size(); ++i) {
      if (x[i].size() != y[i].size()) return false;
      for (usize j = 0; j < x[i].size(); ++j) {
        if (x[i][j].core != y[i][j].core || x[i][j].plane != y[i][j].plane) return false;
      }
    }
    return true;
  };
  SJ_REQUIRE(slots_eq(donor.input_taps, next.input_taps),
             "weight swap: input tap table changed — remap and recompile instead");
  SJ_REQUIRE(slots_eq(donor.unit_slots, next.unit_slots) && donor.unit_depth == next.unit_depth,
             "weight swap: unit slot tables changed — remap and recompile instead");
}

}  // namespace

CompiledModel::CompiledModel(const MappedNetwork& mapped, const snn::SnnNetwork& net)
    : mapped_(&mapped),
      net_(&net),
      topo_(map::make_topology(mapped)),
      prog_(map::lower_program(mapped, topo_)),
      plan_(map::build_shard_plan(mapped, topo_, prog_)) {
  build_dense_rows();
  build_touch_sets();
  build_pipeline_exec();
}

CompiledModel::CompiledModel(const MappedNetwork& mapped, const snn::SnnNetwork& net,
                             const CompiledModel& donor)
    : mapped_(&mapped),
      net_(&net),
      topo_(donor.topo_),
      prog_(donor.prog_),
      plan_(donor.plan_),
      touched_routers_(donor.touched_routers_),
      active_cores_(donor.active_cores_),
      touched_links_(donor.touched_links_),
      pipe_(donor.pipe_),
      pipe_plain_(donor.pipe_plain_),
      pipe_shards_(donor.pipe_shards_),
      pipe_ranges_(donor.pipe_ranges_),
      pend_slot_(donor.pend_slot_),
      pend_count_(donor.pend_count_) {
  require_swap_compatible(donor.mapped(), mapped);
  // Touch sets and the shard plan depend only on the (identical) program,
  // chip geometry and input taps, so the donor's copies hold; dense rows
  // fold the new weights.
  build_dense_rows();
}

void CompiledModel::build_dense_rows() {
  const MappedNetwork& mapped = *mapped_;
  // Precompile dense weight rows where they pay off. FC cores have ~fully
  // dense synapse rows, so the ACC gather becomes one contiguous 256-lane
  // add per spiking axon (adding the explicit zeros is exact — integer adds
  // of 0 change nothing). Conv cores keep the CSR walk: their rows hold
  // k*k*cin taps, far below the ~64-tap break-even of a full-width add.
  dense_w_.assign(mapped.cores.size(), {});
  for (usize c = 0; c < mapped.cores.size(); ++c) {
    const map::MappedCore& mc = mapped.cores[c];
    const i64 axons = mc.axon_mask.popcount();
    if (axons == 0) continue;
    const i64 taps = static_cast<i64>(mc.weights.taps.size());
    if (taps < axons * 64) continue;
    auto& dw = dense_w_[c];
    dw.assign(static_cast<usize>(256) * 256, 0);
    // Fold in i32: duplicate taps to one (axon, plane) sum exactly as the
    // CSR walk would. If the folded row value cannot round-trip through the
    // i16 lane (possible only with duplicates), densifying would change
    // results — keep that core on the CSR path instead.
    bool fits = true;
    mc.axon_mask.for_each([&](u16 a) {
      const auto [lo, hi] = mc.weights.row(a);
      std::array<i32, 256> row{};
      for (u32 t = lo; t < hi; ++t) row[mc.weights.taps[t].first] += mc.weights.taps[t].second;
      i16* out = dw.data() + static_cast<usize>(a) * 256;
      for (int j = 0; j < 256; ++j) {
        fits = fits && fits_signed(row[static_cast<usize>(j)], 16);
        out[j] = static_cast<i16>(row[static_cast<usize>(j)]);
      }
    });
    if (!fits) dw.clear();
  }
}

void CompiledModel::build_touch_sets() {
  const MappedNetwork& mapped = *mapped_;
  // Touch sets: which routers, links and core states the program can write.
  // Everything else is filler pass-through that stays zero for the whole
  // run, so frame resets and axon rotation skip it — and per-context
  // NocStates compact their allocation to exactly these sets.
  std::vector<bool> router_touched(mapped.cores.size(), false);
  std::vector<bool> core_active(mapped.cores.size(), false);
  std::vector<bool> link_touched(topo_.num_links(), false);
  for (const map::ExecOp& op : prog_.ops) {
    router_touched[op.core] = true;
    core_active[op.core] = true;
    if (op.link != noc::kInvalidLink) {
      link_touched[op.link] = true;
      router_touched[topo_.link(op.link).dst] = true;
    }
  }
  for (const auto& taps : mapped.input_taps) {
    for (const Slot& s : taps) core_active[s.core] = true;
  }
  for (u32 c = 0; c < mapped.cores.size(); ++c) {
    if (router_touched[c]) touched_routers_.push_back(c);
    if (core_active[c]) active_cores_.push_back(c);
  }
  for (u32 l = 0; l < topo_.num_links(); ++l) {
    if (link_touched[l]) touched_links_.push_back(l);
  }
}

void CompiledModel::build_pipeline_exec() {
  const MappedNetwork& m = *mapped_;
  if (m.pipeline > 0) pipe_ = map::build_pipeline(m);
  prog_.pipeline_slack = pipe_.slack;
  prog_.pipeline_depth = pipe_.depth;
  if (!pipe_.enabled()) return;

  // Pending-buffer slots for in-flight ACC gathers: one (core, parity) pair
  // of i32[256] accumulators per ACC-issuing core (SimContext::acc_pend_).
  pend_slot_.assign(m.cores.size(), -1);
  pend_count_ = 0;
  for (const map::ExecOp& op : prog_.ops) {
    if (op.code == core::OpCode::Acc && pend_slot_[op.core] < 0) {
      pend_slot_[op.core] = pend_count_++;
    }
  }

  const i32 span = pipe_.span;
  const i32 acc = m.arch.acc_cycles;

  // One PipeTables per execution domain from the domain's op list (schedule
  // order) and per-op pipelined issue cycles. Within one cycle the engine
  // runs [rotations, injections, ACC commits, ops in schedule order] — the
  // exact order the analysis priced its w = 0 edges against.
  const auto build_tables = [&](const std::vector<map::ExecOp>& ops,
                                const std::vector<i32>& cyc, const std::vector<u32>& rot,
                                const std::vector<std::pair<u32, map::Slot>>& taps) {
    PipeTables pt;
    pt.rows.resize(static_cast<usize>(span));
    std::vector<u32> perm(ops.size());
    for (u32 i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(),
                     [&](u32 a, u32 b) { return cyc[a] < cyc[b]; });
    pt.ops.reserve(ops.size());
    std::vector<i32> op_cyc;
    op_cyc.reserve(ops.size());
    std::vector<std::pair<i32, u32>> commit_at;  // (commit cycle, pt.ops index)
    for (const u32 i : perm) {
      if (ops[i].code == core::OpCode::Acc) {
        commit_at.emplace_back(cyc[i] + acc, static_cast<u32>(pt.ops.size()));
      }
      op_cyc.push_back(cyc[i]);
      pt.ops.push_back(ops[i]);
    }
    std::stable_sort(commit_at.begin(), commit_at.end());
    pt.rot_cores.assign(rot.begin(), rot.end());
    std::stable_sort(pt.rot_cores.begin(), pt.rot_cores.end(), [&](u32 a, u32 b) {
      return pipe_.rotate_cycle[a] < pipe_.rotate_cycle[b];
    });
    pt.taps.assign(taps.begin(), taps.end());
    std::stable_sort(pt.taps.begin(), pt.taps.end(), [&](const auto& a, const auto& b) {
      return pipe_.rotate_cycle[a.second.core] < pipe_.rotate_cycle[b.second.core];
    });
    pt.commits.reserve(commit_at.size());
    for (const auto& [cy, idx] : commit_at) pt.commits.push_back(idx);
    // Bucket each sorted list into contiguous per-row [b, e) slices.
    const auto slice = [&](usize count, auto&& cycle_of, auto&& set) {
      usize i = 0;
      for (i32 r = 0; r < span; ++r) {
        const u32 b = static_cast<u32>(i);
        while (i < count && cycle_of(i) == r) ++i;
        set(pt.rows[static_cast<usize>(r)], b, static_cast<u32>(i));
      }
      SJ_ASSERT(i == count, "pipeline: entry outside the schedule span");
    };
    slice(pt.rot_cores.size(),
          [&](usize i) { return pipe_.rotate_cycle[pt.rot_cores[i]]; },
          [](PipeTables::Row& row, u32 b, u32 e) { row.rot_b = b; row.rot_e = e; });
    slice(pt.taps.size(),
          [&](usize i) { return pipe_.rotate_cycle[pt.taps[i].second.core]; },
          [](PipeTables::Row& row, u32 b, u32 e) { row.tap_b = b; row.tap_e = e; });
    slice(pt.commits.size(), [&](usize i) { return commit_at[i].first; },
          [](PipeTables::Row& row, u32 b, u32 e) { row.com_b = b; row.com_e = e; });
    slice(pt.ops.size(), [&](usize i) { return op_cyc[i]; },
          [](PipeTables::Row& row, u32 b, u32 e) { row.op_b = b; row.op_e = e; });
    return pt;
  };

  {
    std::vector<std::pair<u32, map::Slot>> taps;
    for (u32 g = 0; g < m.input_taps.size(); ++g) {
      for (const map::Slot& s : m.input_taps[g]) taps.emplace_back(g, s);
    }
    pipe_plain_ = build_tables(prog_.ops, pipe_.op_cycle, active_cores_, taps);
  }

  // Per-shard tables: shard ops are an order-preserving deal of prog_.ops by
  // chip (see build_shard_plan), so one walk recovers each shard op's global
  // index and with it its pipelined cycle.
  const usize S = plan_.num_shards();
  std::vector<std::vector<i32>> shard_cyc(S);
  for (usize s = 0; s < S; ++s) shard_cyc[s].reserve(plan_.shards[s].ops.size());
  for (u32 i = 0; i < prog_.ops.size(); ++i) {
    shard_cyc[plan_.shard_of_core[prog_.ops[i].core]].push_back(pipe_.op_cycle[i]);
  }
  pipe_shards_.clear();
  pipe_shards_.reserve(S);
  for (usize s = 0; s < S; ++s) {
    const map::ShardPlan::Shard& sh = plan_.shards[s];
    SJ_ASSERT(shard_cyc[s].size() == sh.ops.size(), "pipeline: shard op deal mismatch");
    pipe_shards_.push_back(build_tables(sh.ops, shard_cyc[s], sh.active_cores, sh.input_taps));
  }

  // Coordinator ranges of the sharded path. Split points: every iteration
  // boundary k*II (input staging), after every readout cycle, and before
  // every cycle that reads a port a cross-shard send can ever feed — the
  // static (dirty-tracking-free, hence conservative) analogue of the shard
  // plan's dynamic barriers. Cross-shard outboxes drain at every boundary.
  const i32 T = m.timesteps;
  const i32 total = T + m.output_depth;
  const u64 ii = static_cast<u64>(pipe_.ii);
  const u64 A = static_cast<u64>(total - 1) * ii + static_cast<u64>(span);
  std::vector<u64> pts;
  for (u64 p = ii; p < A; p += ii) pts.push_back(p);
  for (i32 k = 0; k < total; ++k) {
    const u64 p = static_cast<u64>(k) * ii + static_cast<u64>(pipe_.readout_cycle) + 1;
    if (p < A) pts.push_back(p);
  }
  std::vector<bool> cross_written(topo_.num_links(), false);
  for (const map::ShardPlan::Shard& sh : plan_.shards) {
    for (const map::ExecOp& op : sh.ops) {
      if (op.cross_shard && op.link != noc::kInvalidLink) cross_written[op.link] = true;
    }
  }
  const auto reads_port = [](core::OpCode code) {
    switch (code) {
      case core::OpCode::PsSum:
      case core::OpCode::PsBypass:
      case core::OpCode::SpkBypass:
      case core::OpCode::SpkRecv:
      case core::OpCode::SpkRecvForward:
        return true;
      default:
        return false;
    }
  };
  std::vector<bool> hazard(static_cast<usize>(span), false);
  for (u32 i = 0; i < prog_.ops.size(); ++i) {
    const map::ExecOp& op = prog_.ops[i];
    if (!reads_port(op.code)) continue;
    const u32 nb = topo_.neighbor(op.core, op.src);
    if (nb == noc::kInvalidCore) continue;  // grid-edge port: never written
    const noc::LinkId feed = topo_.link_id(nb, opposite(op.src));
    if (feed != noc::kInvalidLink && cross_written[feed]) {
      hazard[static_cast<usize>(pipe_.op_cycle[i])] = true;
    }
  }
  for (i32 r = 0; r < span; ++r) {
    if (!hazard[static_cast<usize>(r)]) continue;
    for (i32 k = 0; k < total; ++k) {
      const u64 p = static_cast<u64>(k) * ii + static_cast<u64>(r);
      if (p > 0 && p < A) pts.push_back(p);
    }
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  pipe_ranges_.clear();
  pipe_ranges_.reserve(pts.size() + 1);
  u64 prev = 0;
  const auto flush = [&](u64 e) {
    PipeRange rg;
    rg.b = prev;
    rg.e = e;
    if (prev % ii == 0 && prev / ii < static_cast<u64>(T)) {
      rg.stage_k = static_cast<i32>(prev / ii);
    }
    const u64 ro = static_cast<u64>(pipe_.readout_cycle) + 1;
    if (e >= ro && (e - ro) % ii == 0 && (e - ro) / ii < static_cast<u64>(total)) {
      rg.readout_k = static_cast<i32>((e - ro) / ii);
    }
    pipe_ranges_.push_back(rg);
    prev = e;
  };
  for (const u64 p : pts) flush(p);
  flush(A);
}

i64 CompiledModel::ldwt_neurons() const {
  i64 n = 0;
  for (const auto& c : mapped_->cores) {
    if (!c.filler) n += c.neuron_mask.popcount();
  }
  return n;
}

SimContext::SimContext(const CompiledModel& model)
    : noc_(model.topology(), model.touched_routers(), model.touched_links()) {
  cores_.resize(model.mapped().cores.size());
}

SimStats SimContext::take_stats() {
  SimStats out = std::move(stats_);
  stats_ = SimStats{};
  return out;
}

void SimContext::drain_profile(obs::PhaseProfile& into) {
  into.merge(profile_);
  profile_.clear();
}

void SimContext::drain_stats(SimStats& into) {
  into.merge(stats_);
  // Zero the scalars but keep the per-link table allocated: the next
  // frame's sends reuse it via ensure() without an allocator round trip.
  noc::TrafficCounters tc = std::move(stats_.noc);
  tc.clear();
  stats_ = SimStats{};
  stats_.noc = std::move(tc);
}

Engine::Engine(const MappedNetwork& mapped, const snn::SnnNetwork& net)
    : model_(mapped, net) {}

usize Engine::ensure_contexts(usize n) {
  while (contexts_.size() < n) {
    contexts_.push_back(std::make_unique<SimContext>(model_));
  }
  return contexts_.size();
}

void Engine::reset(SimContext& ctx) const {
  // Guard against a context built for a different model before any state
  // is indexed (the NoC layer's own topology check only fires later, at
  // the first masked send).
  SJ_ASSERT(ctx.cores_.size() == model_.mapped().cores.size(),
            "Engine: context was not built for this model");
  for (const u32 c : model_.active_cores_) {
    SimContext::CoreState& cs = ctx.cores_[c];
    cs.local_ps.fill(0);
    cs.potential.fill(0);
    cs.axon_cur = {};
    cs.axon_n1 = {};
    cs.axon_n2 = {};
  }
  ctx.noc_.reset_subset(model_.touched_routers_, model_.touched_links_);
}

namespace {

/// Send policy of the unsharded path: staged writes go to the NocState's
/// shared queue, committed by commit_cycle after every program cycle.
struct QueueSender {
  noc::NocState& noc;
  const noc::NocTopology& topo;
  noc::TrafficCounters& tc;
  void ps(const map::ExecOp& op, const i16* values) {
    noc.send_ps_masked(topo, op.link, op.mask, values, tc);
  }
  void spike(const map::ExecOp& op, const noc::Router::Words& bits) {
    noc.send_spike_masked(topo, op.link, op.mask, bits, tc);
  }
};

/// Send policy of the sharded path: staged writes go to this shard's lane —
/// locally for in-shard links, into the outbox for cross-shard ones — so
/// concurrent shards never touch the shared staging queue.
struct LaneSender {
  noc::NocState& noc;
  const noc::NocTopology& topo;
  noc::NocState::ShardLane& lane;
  noc::TrafficCounters& tc;
  void ps(const map::ExecOp& op, const i16* values) {
    noc.send_ps_masked(topo, lane, op.cross_shard, op.link, op.mask, values, tc);
  }
  void spike(const map::ExecOp& op, const noc::Router::Words& bits) {
    noc.send_spike_masked(topo, lane, op.cross_shard, op.link, op.mask, bits, tc);
  }
};

}  // namespace

template <typename Sender>
void Engine::exec_ops(SimContext& ctx, const map::ExecOp* ops, u32 begin, u32 end,
                      SimStats& st, Sender&& send, i32 acc_parity) const {
  const MappedNetwork& mapped = *model_.mapped_;
  const auto& cores = mapped.cores;
  const i32 ps_bits = mapped.arch.noc_bits;
  const i32 lps_bits = mapped.arch.local_ps_bits;
  const i32 pot_bits = mapped.arch.potential_bits;
  const i64 ps_lo = signed_min(ps_bits), ps_hi = signed_max(ps_bits);
  const i64 lps_lo = signed_min(lps_bits), lps_hi = signed_max(lps_bits);
  const i64 pot_lo = signed_min(pot_bits), pot_hi = signed_max(pot_bits);
  // Vector-strip eligibility. The i16-output kernels need their clamp range
  // inside i16; integrate/fire additionally needs i32 lane arithmetic to be
  // exact (simd::integrate_fire_exact, checked per core below since the
  // threshold is a core parameter). Exotic ablations outside these bounds
  // keep the original scalar strip walks.
  const bool ps_vec = ps_bits <= 16;
  const bool lps_vec = lps_bits <= 16;

  // Every op runs as a word-level kernel over its mask's four u64 words:
  // all-ones words take a contiguous 64-lane strip loop (vectorizable),
  // partial words walk set bits. Unmasked planes are never touched.
  for (u32 oi = begin; oi < end; ++oi) {
    const map::ExecOp& op = ops[oi];
    const u32 c = op.core;
    SimContext::CoreState& cs = ctx.cores_[c];
    noc::Router& rt = ctx.noc_.router(c);
    st.op_neurons[op.energy_op] += op.mask_pop;
    switch (op.code) {
      case core::OpCode::Acc: {
        const map::MappedCore& mc = cores[c];
        // Pipelined issue (acc_parity >= 0): gather into the core's pending
        // buffer for this iteration parity and let acc_commit land the local
        // PS file acc_cycles later. Serial: gather into the reusable scratch
        // and commit immediately, as the hardware's blocking ACC would.
        const bool pipelined = acc_parity >= 0;
        std::array<i32, 256>& acc =
            pipelined ? ctx.acc_pend_[static_cast<usize>(model_.pend_slot_[c]) * 2 +
                                      static_cast<usize>(acc_parity)]
                      : cs.acc;
        if (!pipelined) cs.local_ps.fill(0);
        acc.fill(0);
        // Weighted-sum gather over *spiking* axons only: the word AND of
        // the axon mask with the current axon register prunes the ~94 %
        // silent slots before the weight walk. Dense cores add their whole
        // precompiled 256-lane row per spiking axon (vectorizable); sparse
        // cores walk the CSR taps.
        const i16* dw = model_.dense_w_[c].empty() ? nullptr : model_.dense_w_[c].data();
        for (int wi = 0; wi < 4; ++wi) {
          const u64 slots = mc.axon_mask.w[static_cast<usize>(wi)];
          st.axon_slots += std::popcount(slots);
          u64 active = slots & cs.axon_cur[static_cast<usize>(wi)];
          st.axon_spikes += std::popcount(active);
          while (active != 0) {
            const u16 a = static_cast<u16>(wi * 64 + std::countr_zero(active));
            active &= active - 1;
            if (dw != nullptr) {
              simd::accumulate_i16(acc.data(), dw + static_cast<usize>(a) * 256, 256);
            } else {
              const auto [lo, hi] = mc.weights.row(a);
              for (u32 t = lo; t < hi; ++t) {
                acc[mc.weights.taps[t].first] += mc.weights.taps[t].second;
              }
            }
          }
        }
        if (pipelined) break;  // acc_commit finishes this acc_cycles later
        if (lps_vec) {
          st.saturations += masked_clamp_store(mc.neuron_mask.w, acc.data(),
                                               cs.local_ps.data(),
                                               static_cast<i32>(lps_lo),
                                               static_cast<i32>(lps_hi));
        } else {
          i64 sat = 0;
          noc::Router::for_each_masked_strip(mc.neuron_mask.w, [&](int p) {
            cs.local_ps[static_cast<usize>(p)] = static_cast<i16>(
                clamp_count(acc[static_cast<usize>(p)], lps_lo, lps_hi, sat));
          });
          st.saturations += sat;
        }
        break;
      }
      case core::OpCode::PsSum: {
        // In-router adder: OP1 is the running sum (consecutive add) or the
        // neuron core's local PS; OP2 arrives on the $SRC port register.
        i16* sb = rt.sum_buf_data();
        const i16* in = rt.ps_in_data(op.src);
        const i16* one = op.consec ? sb : cs.local_ps.data();
        if (ps_vec) {
          st.saturations += masked_add_clamp(op.mask, one, in, sb,
                                             static_cast<i32>(ps_lo),
                                             static_cast<i32>(ps_hi));
        } else {
          i64 sat = 0;
          noc::Router::for_each_masked_strip(op.mask, [&](int p) {
            sb[p] = static_cast<i16>(clamp_count(
                static_cast<i64>(one[p]) + in[p], ps_lo, ps_hi, sat));
          });
          st.saturations += sat;
        }
        break;
      }
      case core::OpCode::PsSend: {
        const i16* src = op.from_sum_buf ? rt.sum_buf_data() : cs.local_ps.data();
        if (op.eject) {
          rt.set_eject_masked(op.mask, src);
        } else {
          send.ps(op, src);
        }
        break;
      }
      case core::OpCode::PsBypass: {
        send.ps(op, rt.ps_in_data(op.src));
        break;
      }
      case core::OpCode::SpkSpike: {
        const map::MappedCore& mc = cores[c];
        const i16* add = op.sum_or_local ? rt.eject_data() : cs.local_ps.data();
        i32* pot = cs.potential.data();
        auto& out = rt.spike_out_words();
        const i64 thr = mc.threshold;
        i64 sat = 0, fired = 0;
        noc::Router::Words fire{};
        const bool if_vec = simd::integrate_fire_exact(pot_bits, thr);
        for (int wi = 0; wi < noc::Router::kWords; ++wi) {
          u64 word = op.mask[static_cast<usize>(wi)];
          if (word == 0) continue;
          const int base = wi * 64;
          if (word == ~u64{0} && if_vec) {
            const u64 f = simd::integrate_fire_strip(
                pot + base, add + base, static_cast<i32>(pot_lo),
                static_cast<i32>(pot_hi), static_cast<i32>(thr), &sat);
            fired += std::popcount(f);
            fire[static_cast<usize>(wi)] = f;
          } else {
            while (word != 0) {
              const int p = base + std::countr_zero(word);
              word &= word - 1;
              i64 v = clamp_count(static_cast<i64>(pot[p]) + add[p],
                                  pot_lo, pot_hi, sat);
              const bool f = v >= thr;
              v -= f ? thr : 0;
              fired += f;
              pot[p] = static_cast<i32>(v);
              fire[static_cast<usize>(p) >> 6] |= static_cast<u64>(f) << (p & 63);
            }
          }
        }
        for (int wi = 0; wi < 4; ++wi) {
          out[static_cast<usize>(wi)] =
              (out[static_cast<usize>(wi)] & ~op.mask[static_cast<usize>(wi)]) |
              fire[static_cast<usize>(wi)];
        }
        st.saturations += sat;
        st.spikes_fired += fired;
        break;
      }
      case core::OpCode::SpkSend: {
        send.spike(op, rt.spike_out_words());
        break;
      }
      case core::OpCode::SpkBypass: {
        send.spike(op, rt.spk_in_words(op.src));
        break;
      }
      case core::OpCode::SpkRecv:
      case core::OpCode::SpkRecvForward: {
        // Axon delivery OR-accumulates, and the axon buffers are only read
        // at the next iteration boundary, so the write needs no staging.
        auto& axon = op.hold ? cs.axon_n2 : cs.axon_n1;
        const auto& in = rt.spk_in_words(op.src);
        for (int wi = 0; wi < 4; ++wi) {
          axon[static_cast<usize>(wi)] |=
              in[static_cast<usize>(wi)] & op.mask[static_cast<usize>(wi)];
        }
        if (op.code == core::OpCode::SpkRecvForward) {
          send.spike(op, in);
        }
        break;
      }
      case core::OpCode::LdWt:
        break;  // weights are preloaded; energy accounted separately
    }
  }
}

void Engine::acc_commit(SimContext& ctx, const map::ExecOp& op, i32 parity,
                        SimStats& st) const {
  // The write half of the pipelined ACC: clear the local PS file and land the
  // pending gather's clamp — the exact twin of the serial Acc kernel's tail,
  // so saturation tallies and results match bit for bit.
  const map::MappedCore& mc = model_.mapped_->cores[op.core];
  SimContext::CoreState& cs = ctx.cores_[op.core];
  const std::array<i32, 256>& acc =
      ctx.acc_pend_[static_cast<usize>(model_.pend_slot_[op.core]) * 2 +
                    static_cast<usize>(parity)];
  const i32 lps_bits = model_.mapped_->arch.local_ps_bits;
  const i64 lps_lo = signed_min(lps_bits), lps_hi = signed_max(lps_bits);
  cs.local_ps.fill(0);
  if (lps_bits <= 16) {
    st.saturations += masked_clamp_store(mc.neuron_mask.w, acc.data(), cs.local_ps.data(),
                                         static_cast<i32>(lps_lo),
                                         static_cast<i32>(lps_hi));
  } else {
    i64 sat = 0;
    noc::Router::for_each_masked_strip(mc.neuron_mask.w, [&](int p) {
      cs.local_ps[static_cast<usize>(p)] = static_cast<i16>(
          clamp_count(acc[static_cast<usize>(p)], lps_lo, lps_hi, sat));
    });
    st.saturations += sat;
  }
}

template <typename Sender>
void Engine::exec_pipe_cycle(SimContext& ctx, const PipeTables& pt, u32 r, i32 k,
                             SimStats& st, Sender&& send) const {
  const PipeTables::Row& row = pt.rows[r];
  // In-cycle order matches the analysis' w = 0 pricing: rotations, then
  // injections, then ACC commits, then the issue slice in schedule order.
  for (u32 i = row.rot_b; i < row.rot_e; ++i) {
    SimContext::CoreState& cs = ctx.cores_[pt.rot_cores[i]];
    cs.axon_cur = cs.axon_n1;
    cs.axon_n1 = cs.axon_n2;
    cs.axon_n2 = {};
  }
  if (row.tap_b != row.tap_e && k < model_.mapped_->timesteps) {
    const BitVec& in = ctx.pipe_input_[static_cast<usize>(k) & 1];
    for (u32 i = row.tap_b; i < row.tap_e; ++i) {
      const auto& [g, slot] = pt.taps[i];
      if (!in.get(g)) continue;
      bit_set(ctx.cores_[slot.core].axon_n1, slot.plane, true);
    }
  }
  const i32 parity = k & 1;
  for (u32 i = row.com_b; i < row.com_e; ++i) {
    acc_commit(ctx, pt.ops[pt.commits[i]], parity, st);
  }
  exec_ops(ctx, pt.ops.data(), row.op_b, row.op_e, st, send, parity);
}

void Engine::run_iteration(SimContext& ctx, const BitVec* input_spikes, SimStats& st) const {
  const MappedNetwork& mapped = *model_.mapped_;

  // Advance axon double-buffers (filler cores never receive spikes).
  for (const u32 c : model_.active_cores_) {
    SimContext::CoreState& cs = ctx.cores_[c];
    cs.axon_cur = cs.axon_n1;
    cs.axon_n1 = cs.axon_n2;
    cs.axon_n2 = {};
  }
  // Testbench injection: input spikes of this iteration land in axon_n1 and
  // are consumed by depth-1 cores next iteration.
  if (input_spikes != nullptr) {
    for (usize g = 0; g < mapped.input_taps.size(); ++g) {
      if (!input_spikes->get(g)) continue;
      for (const Slot& s : mapped.input_taps[g]) {
        bit_set(ctx.cores_[s.core].axon_n1, s.plane, true);
      }
    }
  }

  QueueSender send{ctx.noc_, model_.topo_, st.noc};
  for (const map::ExecCycle& cyc : model_.prog_.cycles) {
    exec_ops(ctx, model_.prog_.ops.data(), cyc.begin, cyc.end, st, send);
    // Two-phase commit: staged port writes become visible from cycle+1 on.
    // Cycles with no ops need no commit — nothing was staged and nothing
    // reads before the next non-empty cycle.
    ctx.noc_.commit_cycle();
  }
  ++st.iterations;
  st.cycles += mapped.cycles_per_timestep;
  st.effective_cycles += mapped.cycles_per_timestep;  // serial: no overlap
}

void Engine::exec_shard_phase(SimContext& ctx, usize s, u32 phase,
                              const BitVec* input_spikes) const {
  const map::ShardPlan::Shard& sh = model_.plan_.shards[s];
  SimStats& st = ctx.shard_stats_[s];
  if (phase == 0) {
    // The shard's slice of the iteration prologue: axon rotation and
    // testbench injection touch only this shard's cores, so they ride
    // inside the first parallel section instead of serializing up front.
    for (const u32 c : sh.active_cores) {
      SimContext::CoreState& cs = ctx.cores_[c];
      cs.axon_cur = cs.axon_n1;
      cs.axon_n1 = cs.axon_n2;
      cs.axon_n2 = {};
    }
    if (input_spikes != nullptr) {
      for (const auto& [g, slot] : sh.input_taps) {
        if (!input_spikes->get(g)) continue;
        bit_set(ctx.cores_[slot.core].axon_n1, slot.plane, true);
      }
    }
  }
  noc::NocState::ShardLane& lane = ctx.lanes_[s];
  LaneSender send{ctx.noc_, model_.topo_, lane, st.noc};
  const map::ShardPlan::Phase& ph = sh.phases[phase];
  for (u32 cyi = ph.cycle_begin; cyi < ph.cycle_end; ++cyi) {
    const map::ShardPlan::Cycle& cyc = sh.cycles[cyi];
    exec_ops(ctx, sh.ops.data(), cyc.begin, cyc.end, st, send);
    // The shard's own two-phase commit: in-shard staged writes land now,
    // cross-shard ones wait in the outbox for the phase barrier.
    ctx.noc_.commit_lane_cycle(lane);
  }
}

void Engine::exec_shard_pipe_range(SimContext& ctx, usize s, u64 b, u64 e) const {
  const PipeTables& pt = model_.pipe_shards_[s];
  const u64 ii = static_cast<u64>(model_.pipe_.ii);
  const u64 span = static_cast<u64>(model_.pipe_.span);
  const i64 total = model_.mapped_->timesteps + model_.mapped_->output_depth;
  SimStats& st = ctx.shard_stats_[s];
  noc::NocState::ShardLane& lane = ctx.lanes_[s];
  LaneSender send{ctx.noc_, model_.topo_, lane, st.noc};
  for (u64 a = b; a < e; ++a) {
    // At most two iterations are live per absolute cycle (span <= 2*II);
    // the older slice executes first, as the cross-edge weights require.
    const i64 kn = static_cast<i64>(a / ii);
    for (i64 k = kn - 1; k <= kn; ++k) {
      if (k < 0 || k >= total) continue;
      const u64 r = a - static_cast<u64>(k) * ii;
      if (r >= span) continue;
      exec_pipe_cycle(ctx, pt, static_cast<u32>(r), static_cast<i32>(k), st, send);
    }
    // Per-cycle local commit; cross-shard outboxes wait for the range drain.
    ctx.noc_.commit_lane_cycle(lane);
  }
}

/// Per-frame shared state of the persistent shard team. Heap-allocated and
/// shared_ptr-held by every helper task: a helper the pool schedules late —
/// even after the frame returned — only ever touches this block's atomics
/// (its claims all fail once the work is done), never the context or engine
/// behind the raw pointers.
struct Engine::Team {
  explicit Team(usize num_shards) : barrier(num_shards) {}

  PhaseTeam barrier;
  const Engine* eng = nullptr;
  SimContext* ctx = nullptr;
  // The current iteration's input spikes; written by the coordinator before
  // the iteration's first open_phase (whose release store publishes it) and
  // only read by phase-0 claim winners.
  const BitVec* input = nullptr;
  u32 num_phases = 1;
  bool prof = false;
  // Pipelined-frame mode: epochs map to coordinator ranges (epoch e runs
  // pipe_ranges[e - 1]) instead of cycling through the plan's phases.
  bool pipelined = false;
  const std::vector<PipeRange>* ranges = nullptr;
  // Per-runner shard preference: own (ShardPlan::assign_workers) shards
  // first, the rest as steal targets in index order.
  std::vector<std::vector<u32>> order;
  // First shard exception; later claims skip their work body (the frame is
  // doomed) but still count, so the barrier always completes and the
  // coordinator can rethrow at the iteration boundary.
  std::atomic<bool> failed{false};
  std::mutex err_mutex;
  std::exception_ptr first_error;

  void fail() noexcept {
    const std::lock_guard<std::mutex> lock(err_mutex);
    if (!first_error) first_error = std::current_exception();
    failed.store(true, std::memory_order_release);
  }
};

void Engine::team_exec_epoch(const Engine* eng, Team& w, u64 e, usize runner) {
  const u32 phase = w.pipelined ? 0 : static_cast<u32>((e - 1) % w.num_phases);
  for (const u32 s : w.order[runner]) {
    if (!w.barrier.claim_exec(s, e)) continue;
    // A successful claim implies the coordinator is still inside this
    // frame's run_frame_sharded, so eng/ctx are alive.
    if (!w.failed.load(std::memory_order_acquire)) {
      try {
        SimContext& ctx = *w.ctx;
        if (w.pipelined) {
          const PipeRange& rg = (*w.ranges)[static_cast<usize>(e - 1)];
          if (w.prof) {
            const u64 t0 = obs::now_ns();
            eng->exec_shard_pipe_range(ctx, s, rg.b, rg.e);
            ctx.profile_scratch_[s] = obs::now_ns() - t0;
          } else {
            eng->exec_shard_pipe_range(ctx, s, rg.b, rg.e);
          }
        } else {
          const BitVec* input = phase == 0 ? w.input : nullptr;
          if (w.prof) {
            const u64 t0 = obs::now_ns();
            eng->exec_shard_phase(ctx, s, phase, input);
            ctx.profile_scratch_[s] = obs::now_ns() - t0;
          } else {
            eng->exec_shard_phase(ctx, s, phase, input);
          }
        }
      } catch (...) {
        w.fail();
      }
    }
    w.barrier.finish_exec(e);
  }
}

void Engine::team_drain_epoch(Team& w, u64 e, usize runner) {
  // Cooperative help-draining: whoever is idle commits the remaining
  // outboxes. Lanes touch pairwise-disjoint destination registers (one link
  // has one sending lane, and (dst, port) identifies the link), so
  // concurrent unordered drains land the same registers as the old serial
  // fixed-order loop.
  for (const u32 s : w.order[runner]) {
    if (!w.barrier.claim_drain(s, e)) continue;
    if (!w.failed.load(std::memory_order_acquire)) {
      try {
        w.ctx->noc_.commit_lane_cross(w.ctx->lanes_[s]);
      } catch (...) {
        w.fail();
      }
    }
    w.barrier.finish_drain(e);
  }
}

void Engine::team_helper_loop(const std::shared_ptr<Team>& w, usize runner) {
  u64 done = 0;
  for (;;) {
    const u64 e = w->barrier.wait_open(done);
    if (e == 0) return;
    team_exec_epoch(w->eng, *w, e, runner);
    w->barrier.await_execs(e);
    team_drain_epoch(*w, e, runner);
    done = e;
  }
}

void Engine::run_iteration_sharded(SimContext& ctx, const BitVec* input_spikes,
                                   Team* team) const {
  const map::ShardPlan& plan = model_.plan_;
  const usize shards = plan.num_shards();
  const bool prof = ctx.profile_on_;

  if (team == nullptr) {
    // Degenerate pools (or a single shard): run every shard on this thread.
    for (u32 phase = 0; phase < plan.num_phases; ++phase) {
      const u64 p0 = prof ? obs::now_ns() : 0;
      for (usize s = 0; s < shards; ++s) {
        if (prof) {
          const u64 t0 = obs::now_ns();
          exec_shard_phase(ctx, s, phase, input_spikes);
          ctx.profile_scratch_[s] = obs::now_ns() - t0;
        } else {
          exec_shard_phase(ctx, s, phase, input_spikes);
        }
      }
      if (prof) {
        const u64 wall = obs::now_ns() - p0;
        ctx.profile_.phase_wall_ns += wall;
        for (usize s = 0; s < shards; ++s) {
          const u64 exec = ctx.profile_scratch_[s];
          ctx.profile_.shard_exec_ns[s] += exec;
          ctx.profile_.shard_wait_ns[s] += wall > exec ? wall - exec : 0;
        }
      }
      const u64 b0 = prof ? obs::now_ns() : 0;
      for (usize s = 0; s < shards; ++s) ctx.noc_.commit_lane_cross(ctx.lanes_[s]);
      if (prof) ctx.profile_.barrier_commit_ns += obs::now_ns() - b0;
    }
  } else {
    // Persistent-team path: this thread coordinates and participates as
    // runner 0. Opening a phase epoch wakes the helpers; everyone claims
    // exec slots, the epoch's drains are gated on every exec finishing (a
    // later op in the phase may legally read a port value the commit would
    // overwrite), and idle runners help drain.
    Team& w = *team;
    w.input = input_spikes;
    for (u32 phase = 0; phase < plan.num_phases; ++phase) {
      const u64 p0 = prof ? obs::now_ns() : 0;
      const u64 e = w.barrier.open_phase();
      team_exec_epoch(this, w, e, 0);
      w.barrier.await_execs(e);
      if (prof) {
        // Same accrual semantics as the parallel_for path: phase_wall is
        // the exec-stage wall on the coordinator, shard wait is its slack
        // against the shard's own exec time.
        const u64 wall = obs::now_ns() - p0;
        ctx.profile_.phase_wall_ns += wall;
        for (usize s = 0; s < shards; ++s) {
          const u64 exec = ctx.profile_scratch_[s];
          ctx.profile_.shard_exec_ns[s] += exec;
          ctx.profile_.shard_wait_ns[s] += wall > exec ? wall - exec : 0;
        }
      }
      const u64 b0 = prof ? obs::now_ns() : 0;
      team_drain_epoch(w, e, 0);
      w.barrier.await_drains(e);
      if (prof) ctx.profile_.barrier_commit_ns += obs::now_ns() - b0;
    }
    if (w.failed.load(std::memory_order_acquire)) {
      const std::lock_guard<std::mutex> lock(w.err_mutex);
      std::rethrow_exception(w.first_error);
    }
  }
  // Iteration-level counters are charged once, on the coordinating thread.
  ++ctx.stats_.iterations;
  ctx.stats_.cycles += model_.mapped_->cycles_per_timestep;
  ctx.stats_.effective_cycles += model_.mapped_->cycles_per_timestep;
}

template <typename RunIter>
FrameResult Engine::run_frame_impl(SimContext& ctx, const Tensor& image,
                                   HardwareTrace* trace, RunIter&& iter) const {
  const MappedNetwork& mapped = *model_.mapped_;
  const snn::SnnNetwork& net = *model_.net_;
  const i32 T = mapped.timesteps;
  const i32 total = T + mapped.output_depth;
  snn::InputEncoder enc(image, net.input_scale);

  const auto& out_slots = mapped.output_slots();
  FrameResult res;
  res.spike_counts.assign(out_slots.size(), 0);
  res.final_potentials.assign(out_slots.size(), 0);
  if (trace != nullptr) {
    trace->units.assign(net.units.size(), {});
    for (usize u = 0; u < net.units.size(); ++u) {
      trace->units[u].reserve(static_cast<usize>(T));
    }
  }

  ctx.stats_.frames += 1;
  for (i32 k = 0; k < total; ++k) {
    BitVec in;
    const bool have_input = k < T;
    if (have_input) in = enc.step();
    iter(ctx, have_input ? &in : nullptr);

    // Readout: output-unit spikes within its logical window.
    if (k >= mapped.output_depth) {
      for (usize j = 0; j < out_slots.size(); ++j) {
        if (ctx.noc_.router(out_slots[j].core).spike_out(out_slots[j].plane)) {
          ++res.spike_counts[j];
        }
      }
    }
    // Per-unit traces, re-aligned to logical timesteps.
    if (trace != nullptr) {
      for (usize u = 0; u < net.units.size(); ++u) {
        const i32 d = mapped.unit_depth[u];
        if (k >= d && k < d + T) {
          const auto& slots = mapped.unit_slots[u];
          BitVec bv(slots.size());
          for (usize j = 0; j < slots.size(); ++j) {
            bv.set(j, ctx.noc_.router(slots[j].core).spike_out(slots[j].plane));
          }
          trace->units[u].push_back(std::move(bv));
        }
      }
    }
  }
  for (usize j = 0; j < out_slots.size(); ++j) {
    res.final_potentials[j] = ctx.cores_[out_slots[j].core].potential[out_slots[j].plane];
  }
  res.predicted = snn::EvalResult::decide(res.spike_counts, res.final_potentials);
  return res;
}

void Engine::pipe_sample(SimContext& ctx, i32 k, FrameResult& res,
                         HardwareTrace* trace) const {
  const MappedNetwork& mapped = *model_.mapped_;
  const snn::SnnNetwork& net = *model_.net_;
  const i32 T = mapped.timesteps;
  const auto& out_slots = mapped.output_slots();
  if (k >= mapped.output_depth) {
    for (usize j = 0; j < out_slots.size(); ++j) {
      if (ctx.noc_.router(out_slots[j].core).spike_out(out_slots[j].plane)) {
        ++res.spike_counts[j];
      }
    }
  }
  if (trace != nullptr) {
    for (usize u = 0; u < net.units.size(); ++u) {
      const i32 d = mapped.unit_depth[u];
      if (k >= d && k < d + T) {
        const auto& slots = mapped.unit_slots[u];
        BitVec bv(slots.size());
        for (usize j = 0; j < slots.size(); ++j) {
          bv.set(j, ctx.noc_.router(slots[j].core).spike_out(slots[j].plane));
        }
        trace->units[u].push_back(std::move(bv));
      }
    }
  }
}

FrameResult Engine::run_frame_pipelined(SimContext& ctx, const Tensor& image,
                                        HardwareTrace* trace) const {
  const bool prof = ctx.profile_on_;
  const u64 f0 = prof ? obs::now_ns() : 0;
  reset(ctx);
  if (prof) ctx.profile_.reset_ns += obs::now_ns() - f0;
  const MappedNetwork& mapped = *model_.mapped_;
  const snn::SnnNetwork& net = *model_.net_;
  const i32 T = mapped.timesteps;
  const i32 total = T + mapped.output_depth;
  const u64 ii = static_cast<u64>(model_.pipe_.ii);
  const u64 span = static_cast<u64>(model_.pipe_.span);
  const u64 readout = static_cast<u64>(model_.pipe_.readout_cycle);
  const u64 A = static_cast<u64>(total - 1) * ii + span;
  snn::InputEncoder enc(image, net.input_scale);

  const auto& out_slots = mapped.output_slots();
  FrameResult res;
  res.spike_counts.assign(out_slots.size(), 0);
  res.final_potentials.assign(out_slots.size(), 0);
  if (trace != nullptr) {
    trace->units.assign(net.units.size(), {});
    for (usize u = 0; u < net.units.size(); ++u) {
      trace->units[u].reserve(static_cast<usize>(T));
    }
  }
  if (ctx.acc_pend_.size() < static_cast<usize>(model_.pend_count_) * 2) {
    ctx.acc_pend_.resize(static_cast<usize>(model_.pend_count_) * 2);
  }

  ctx.stats_.frames += 1;
  const u64 e0 = prof ? obs::now_ns() : 0;
  QueueSender send{ctx.noc_, model_.topo_, ctx.stats_.noc};
  for (u64 a = 0; a < A; ++a) {
    const i64 kn = static_cast<i64>(a / ii);
    // Stage iteration kn's input at its first cycle. Its earliest reader is
    // its own injection; the buffer it replaces belonged to kn - 2, whose
    // injections retired before (kn - 1)*II + span <= a + span.
    if (a % ii == 0 && kn < T) ctx.pipe_input_[static_cast<usize>(kn) & 1] = enc.step();
    for (i64 k = kn - 1; k <= kn; ++k) {  // older slice first
      if (k < 0 || k >= total) continue;
      const u64 r = a - static_cast<u64>(k) * ii;
      if (r >= span) continue;
      exec_pipe_cycle(ctx, model_.pipe_plain_, static_cast<u32>(r), static_cast<i32>(k),
                      ctx.stats_, send);
    }
    ctx.noc_.commit_cycle();
    for (i64 k = kn - 1; k <= kn; ++k) {
      if (k < 0 || k >= total) continue;
      if (a - static_cast<u64>(k) * ii == readout) pipe_sample(ctx, static_cast<i32>(k), res, trace);
    }
  }
  // Iteration/schedule-cycle counters match the serial loop exactly (same
  // ops ran); effective_cycles records the overlapped wall clock.
  ctx.stats_.iterations += total;
  ctx.stats_.cycles += static_cast<u64>(total) * mapped.cycles_per_timestep;
  ctx.stats_.effective_cycles += A;
  if (prof) ctx.profile_.exec_ns += obs::now_ns() - e0;

  for (usize j = 0; j < out_slots.size(); ++j) {
    res.final_potentials[j] = ctx.cores_[out_slots[j].core].potential[out_slots[j].plane];
  }
  res.predicted = snn::EvalResult::decide(res.spike_counts, res.final_potentials);
  if (prof) {
    ++ctx.profile_.frames;
    ctx.profile_.frame_ns += obs::now_ns() - f0;
  }
  return res;
}

FrameResult Engine::run_frame(SimContext& ctx, const Tensor& image,
                              HardwareTrace* trace) const {
  if (model_.pipe_.enabled()) return run_frame_pipelined(ctx, image, trace);
  if (!ctx.profile_on_) {
    reset(ctx);
    return run_frame_impl(ctx, image, trace, [&](SimContext& c, const BitVec* in) {
      run_iteration(c, in, c.stats_);
    });
  }
  const u64 f0 = obs::now_ns();
  reset(ctx);
  ctx.profile_.reset_ns += obs::now_ns() - f0;
  FrameResult res =
      run_frame_impl(ctx, image, trace, [&](SimContext& c, const BitVec* in) {
        const u64 t0 = obs::now_ns();
        run_iteration(c, in, c.stats_);
        c.profile_.exec_ns += obs::now_ns() - t0;
      });
  ++ctx.profile_.frames;
  ctx.profile_.frame_ns += obs::now_ns() - f0;
  return res;
}

void Engine::drain_shard_stats(SimContext& ctx) const {
  // Deterministic reduction: shard tallies merge in shard order regardless
  // of which threads ran the shards. Scalars zero, per-link tables keep
  // their allocation for the next frame (same trick as drain_stats).
  for (SimStats& st : ctx.shard_stats_) {
    ctx.stats_.merge(st);
    noc::TrafficCounters tc = std::move(st.noc);
    tc.clear();
    st = SimStats{};
    st.noc = std::move(tc);
  }
}

FrameResult Engine::run_frame_sharded_pipelined(SimContext& ctx, const Tensor& image,
                                                HardwareTrace* trace, ThreadPool* pool) const {
  const bool prof = ctx.profile_on_;
  const u64 f0 = prof ? obs::now_ns() : 0;
  reset(ctx);
  if (prof) ctx.profile_.reset_ns += obs::now_ns() - f0;
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  const MappedNetwork& mapped = *model_.mapped_;
  const snn::SnnNetwork& net = *model_.net_;
  const usize shards = model_.plan_.num_shards();
  if (ctx.lanes_.size() < shards) ctx.lanes_.resize(shards);
  if (ctx.shard_stats_.size() < shards) ctx.shard_stats_.resize(shards);
  if (prof) {
    if (ctx.profile_.shard_exec_ns.size() < shards) {
      ctx.profile_.shard_exec_ns.resize(shards, 0);
      ctx.profile_.shard_wait_ns.resize(shards, 0);
    }
    if (ctx.profile_scratch_.size() < shards) ctx.profile_scratch_.resize(shards, 0);
  }
  for (auto& lane : ctx.lanes_) lane.clear();
  if (ctx.acc_pend_.size() < static_cast<usize>(model_.pend_count_) * 2) {
    ctx.acc_pend_.resize(static_cast<usize>(model_.pend_count_) * 2);
  }

  const i32 T = mapped.timesteps;
  const i32 total = T + mapped.output_depth;
  const u64 A = static_cast<u64>(total - 1) * static_cast<u64>(model_.pipe_.ii) +
                static_cast<u64>(model_.pipe_.span);
  snn::InputEncoder enc(image, net.input_scale);
  const auto& out_slots = mapped.output_slots();
  FrameResult res;
  res.spike_counts.assign(out_slots.size(), 0);
  res.final_potentials.assign(out_slots.size(), 0);
  if (trace != nullptr) {
    trace->units.assign(net.units.size(), {});
    for (usize u = 0; u < net.units.size(); ++u) {
      trace->units[u].reserve(static_cast<usize>(T));
    }
  }

  // Same persistent team as the serial sharded path, but epochs are the
  // precompiled coordinator ranges instead of plan phases.
  std::shared_ptr<Team> team;
  const usize runners = std::min(shards, std::max<usize>(p.num_threads(), 1));
  if (runners > 1) {
    team = std::make_shared<Team>(shards);
    team->eng = this;
    team->ctx = &ctx;
    team->prof = prof;
    team->pipelined = true;
    team->ranges = &model_.pipe_ranges_;
    const std::vector<u32> owner = model_.plan_.assign_workers(runners);
    team->order.assign(runners, {});
    for (usize r = 0; r < runners; ++r) {
      team->order[r].reserve(shards);
      for (u32 s = 0; s < shards; ++s) {
        if (owner[s] == r) team->order[r].push_back(s);
      }
      for (u32 s = 0; s < shards; ++s) {
        if (owner[s] != r) team->order[r].push_back(s);
      }
    }
    for (usize r = 1; r < runners; ++r) {
      p.submit([team, r] { team_helper_loop(team, r); });
    }
  }

  ctx.stats_.frames += 1;
  try {
    for (const PipeRange& rg : model_.pipe_ranges_) {
      // Staged before the epoch opens; the open's release store publishes
      // the new buffer to the helpers (like Team::input on the serial path).
      if (rg.stage_k >= 0) {
        ctx.pipe_input_[static_cast<usize>(rg.stage_k) & 1] = enc.step();
      }
      if (team == nullptr) {
        const u64 p0 = prof ? obs::now_ns() : 0;
        for (usize s = 0; s < shards; ++s) {
          if (prof) {
            const u64 t0 = obs::now_ns();
            exec_shard_pipe_range(ctx, s, rg.b, rg.e);
            ctx.profile_scratch_[s] = obs::now_ns() - t0;
          } else {
            exec_shard_pipe_range(ctx, s, rg.b, rg.e);
          }
        }
        if (prof) {
          const u64 wall = obs::now_ns() - p0;
          ctx.profile_.phase_wall_ns += wall;
          for (usize s = 0; s < shards; ++s) {
            const u64 exec = ctx.profile_scratch_[s];
            ctx.profile_.shard_exec_ns[s] += exec;
            ctx.profile_.shard_wait_ns[s] += wall > exec ? wall - exec : 0;
          }
        }
        const u64 b0 = prof ? obs::now_ns() : 0;
        for (usize s = 0; s < shards; ++s) ctx.noc_.commit_lane_cross(ctx.lanes_[s]);
        if (prof) ctx.profile_.barrier_commit_ns += obs::now_ns() - b0;
      } else {
        Team& w = *team;
        const u64 p0 = prof ? obs::now_ns() : 0;
        const u64 e = w.barrier.open_phase();
        team_exec_epoch(this, w, e, 0);
        w.barrier.await_execs(e);
        if (prof) {
          const u64 wall = obs::now_ns() - p0;
          ctx.profile_.phase_wall_ns += wall;
          for (usize s = 0; s < shards; ++s) {
            const u64 exec = ctx.profile_scratch_[s];
            ctx.profile_.shard_exec_ns[s] += exec;
            ctx.profile_.shard_wait_ns[s] += wall > exec ? wall - exec : 0;
          }
        }
        const u64 b0 = prof ? obs::now_ns() : 0;
        team_drain_epoch(w, e, 0);
        w.barrier.await_drains(e);
        if (prof) ctx.profile_.barrier_commit_ns += obs::now_ns() - b0;
        if (w.failed.load(std::memory_order_acquire)) {
          const std::lock_guard<std::mutex> lock(w.err_mutex);
          std::rethrow_exception(w.first_error);
        }
      }
      if (rg.readout_k >= 0) pipe_sample(ctx, rg.readout_k, res, trace);
    }
    ctx.stats_.iterations += total;
    ctx.stats_.cycles += static_cast<u64>(total) * mapped.cycles_per_timestep;
    ctx.stats_.effective_cycles += A;
    if (team) team->barrier.finish_team();
    drain_shard_stats(ctx);
    for (usize j = 0; j < out_slots.size(); ++j) {
      res.final_potentials[j] = ctx.cores_[out_slots[j].core].potential[out_slots[j].plane];
    }
    res.predicted = snn::EvalResult::decide(res.spike_counts, res.final_potentials);
    if (prof) {
      ++ctx.profile_.sharded_frames;
      ctx.profile_.frame_ns += obs::now_ns() - f0;
    }
    return res;
  } catch (...) {
    // Same contract as run_frame_sharded's failure path: coordinator-side
    // throws only happen at range boundaries (after awaited drains), so the
    // helpers are idle and finish_team is safe.
    if (team) team->barrier.finish_team();
    drain_shard_stats(ctx);
    for (auto& lane : ctx.lanes_) lane.clear();
    throw;
  }
}

FrameResult Engine::run_frame_sharded(SimContext& ctx, const Tensor& image,
                                      HardwareTrace* trace, ThreadPool* pool) const {
  if (model_.pipe_.enabled()) return run_frame_sharded_pipelined(ctx, image, trace, pool);
  const bool prof = ctx.profile_on_;
  const u64 f0 = prof ? obs::now_ns() : 0;
  reset(ctx);
  if (prof) ctx.profile_.reset_ns += obs::now_ns() - f0;
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  const usize shards = model_.plan_.num_shards();
  if (ctx.lanes_.size() < shards) ctx.lanes_.resize(shards);
  if (ctx.shard_stats_.size() < shards) ctx.shard_stats_.resize(shards);
  if (prof) {
    if (ctx.profile_.shard_exec_ns.size() < shards) {
      ctx.profile_.shard_exec_ns.resize(shards, 0);
      ctx.profile_.shard_wait_ns.resize(shards, 0);
    }
    if (ctx.profile_scratch_.size() < shards) ctx.profile_scratch_.resize(shards, 0);
  }
  // A prior frame that threw mid-iteration may have left writes staged.
  for (auto& lane : ctx.lanes_) lane.clear();

  // Persistent shard team: one coordinator (this thread) plus up to
  // runners-1 pool helpers, pinned to the frame. Helpers are plain
  // submitted tasks parked on the team barrier between epochs; the barrier
  // is work-counted, so a helper the pool never schedules costs nothing —
  // the coordinator finishes every slot alone. Degenerate setups (one
  // shard, one thread) skip the team entirely.
  std::shared_ptr<Team> team;
  const usize runners = std::min(shards, std::max<usize>(p.num_threads(), 1));
  if (runners > 1) {
    team = std::make_shared<Team>(shards);
    team->eng = this;
    team->ctx = &ctx;
    team->num_phases = model_.plan_.num_phases;
    team->prof = prof;
    // Shard -> runner locality from the plan's static weights; every runner
    // prefers its own shards and steals the rest in index order.
    const std::vector<u32> owner = model_.plan_.assign_workers(runners);
    team->order.assign(runners, {});
    for (usize r = 0; r < runners; ++r) {
      team->order[r].reserve(shards);
      for (u32 s = 0; s < shards; ++s) {
        if (owner[s] == r) team->order[r].push_back(s);
      }
      for (u32 s = 0; s < shards; ++s) {
        if (owner[s] != r) team->order[r].push_back(s);
      }
    }
    for (usize r = 1; r < runners; ++r) {
      p.submit([team, r] { team_helper_loop(team, r); });
    }
  }

  try {
    FrameResult res =
        run_frame_impl(ctx, image, trace, [&](SimContext& c, const BitVec* in) {
          run_iteration_sharded(c, in, team.get());
        });
    // Every epoch is fully drained here (run_iteration_sharded awaits the
    // last drain), so releasing the helpers is safe.
    if (team) team->barrier.finish_team();
    drain_shard_stats(ctx);
    if (prof) {
      ++ctx.profile_.sharded_frames;
      ctx.profile_.frame_ns += obs::now_ns() - f0;
    }
    return res;
  } catch (...) {
    // Keep the run_frame contract: partial tallies stay visible in
    // ctx.stats() (callers drain or discard them), nothing hides in the
    // per-shard scratch, and no staged writes leak into the next frame.
    // Coordinator-side throws only happen at epoch boundaries (shard
    // exceptions are captured and rethrown after the awaited drain), so
    // the helpers are idle and finish_team is safe here too.
    if (team) team->barrier.finish_team();
    drain_shard_stats(ctx);
    for (auto& lane : ctx.lanes_) lane.clear();
    throw;
  }
}

std::vector<FrameResult> Engine::run_batch(std::span<const Tensor> images,
                                           SimStats* stats, ThreadPool* pool) {
  std::vector<FrameResult> results(images.size());
  if (images.empty()) return results;
  ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
  const usize n = images.size();
  // One pooled context per potential worker — also for nested calls from
  // one of the pool's own workers: nested parallel_for chunks enqueue and
  // idle workers help-drain them (see common/thread_pool.h), so a nested
  // batch can genuinely run its shards concurrently.
  const usize threads = std::max<usize>(1, p.num_threads());
  const usize shards = std::min<usize>(n, threads);
  ensure_contexts(shards);
  // Pooled contexts may carry tallies from direct run_frame use; set those
  // aside so the batch reports exactly its own frames, and restore them
  // afterwards so a caller's own accounting is not silently stolen.
  std::vector<SimStats> carry(shards);
  for (usize s = 0; s < shards; ++s) carry[s] = contexts_[s]->take_stats();
  // Drains each context's batch tally (merging into `out` when asked) and
  // restores its pre-batch stats — also on the exception path, so a
  // throwing frame can neither lose the caller's tally nor leave partial
  // batch counts behind.
  const auto drain_and_restore = [&](SimStats* out) {
    for (usize s = 0; s < shards; ++s) {
      SimStats part = contexts_[s]->take_stats();
      if (out != nullptr) out->merge(part);
      contexts_[s]->stats_ = std::move(carry[s]);
    }
  };
  try {
    // Contiguous shards, one pooled context each. Per-frame results and
    // stats contributions are context-independent (full reset at every
    // frame boundary), so the sharding never shows in the outputs.
    p.parallel_for(shards, [&](usize s) {
      SimContext& ctx = *contexts_[s];
      const usize lo = s * n / shards;
      const usize hi = (s + 1) * n / shards;
      for (usize i = lo; i < hi; ++i) {
        results[i] = run_frame(ctx, images[i]);
      }
    });
  } catch (...) {
    drain_and_restore(nullptr);  // discard partial batch tallies
    throw;
  }
  // Deterministic reduction: per-context tallies merge in context order, on
  // this thread, regardless of how many workers ran the batch.
  drain_and_restore(stats);
  return results;
}

}  // namespace sj::sim
