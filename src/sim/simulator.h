// Single-context view of the cycle-level functional simulator (paper §V).
//
// The execution machinery lives in sim/engine.h, split along the
// artifact/state seam: an immutable CompiledModel (mapped network, lowered
// plane-parallel op stream, NoC topology) and mutable SimContexts (core
// registers, router state, stats). Simulator binds one Engine to one
// context and keeps the original one-frame-at-a-time API for tests, tools
// and anything that doesn't batch. Batch callers use sim::Engine directly.
//
// It is aimed to be cycle-by-cycle equivalent to RTL in exactly the three
// senses the paper lists: (1) it runs the Table-I atomic operations, (2) it
// produces and routes the same data in neuron cores and NoCs, and (3) it
// yields execution statistics for architectural power estimation.
// Bit-exactness against the abstract SNN reference is enforced by
// tests/test_fuzz_equivalence.cpp, and against a per-plane scalar reference
// by tests/test_exec_kernels.cpp.
//
// Layer pipelining: a unit at depth d processes frame timestep t during
// hardware iteration d + t, so one frame needs T + depth iterations; at
// steady state the array sustains one frame per T iterations.
#pragma once

#include "sim/engine.h"

namespace sj::sim {

/// One Shenjing system instance bound to one execution context. Not
/// thread-safe; for parallel frame evaluation use sim::Engine::run_batch
/// (which shares one compiled artifact across contexts) instead of one
/// Simulator per thread.
class Simulator {
 public:
  Simulator(const MappedNetwork& mapped, const snn::SnnNetwork& net)
      : engine_(mapped, net), ctx_(engine_.model()) {}

  /// Simulates one frame (T + depth iterations). `trace`, when provided, is
  /// filled with per-unit root spike trains for equivalence checking. A
  /// frame that throws contributes nothing to later frames' stats (the
  /// partial tally is discarded, as the pre-batch simulator did).
  FrameResult run_frame(const Tensor& image, SimStats* stats = nullptr,
                        HardwareTrace* trace = nullptr) {
    FrameResult res;
    try {
      res = engine_.run_frame(ctx_, image, trace);
    } catch (...) {
      ctx_.take_stats();  // discard the partial frame tally
      throw;
    }
    SimStats frame_stats = ctx_.take_stats();
    if (stats != nullptr) stats->merge(frame_stats);
    return res;
  }

  /// Energy bookkeeping for the one-off weight-load phase: per-neuron LD_WT
  /// issue count (#cores x neurons); charged once per deployment.
  i64 ldwt_neurons() const { return engine_.model().ldwt_neurons(); }

  const MappedNetwork& mapped() const { return engine_.model().mapped(); }
  /// The NoC topology this simulator routes over (for traffic reports).
  const noc::NocTopology& topology() const { return engine_.model().topology(); }
  /// The lowered op stream this simulator executes (for tests/inspection).
  const map::ExecProgram& program() const { return engine_.model().program(); }

 private:
  Engine engine_;
  SimContext ctx_;
};

/// Accuracy of the *hardware* on (a prefix of) a dataset, evaluated as one
/// Engine batch. Also accumulates stats when given.
double hardware_accuracy(const MappedNetwork& mapped, const snn::SnnNetwork& net,
                         const nn::Dataset& data, usize max_frames = 0,
                         SimStats* stats = nullptr);

}  // namespace sj::sim
