// Cycle-level functional simulator (paper §V), plane-parallel edition.
//
// Executes a compiled MappedNetwork the way the RTL would: every timestep it
// replays the cycle-by-cycle atomic-op schedule, moving 16-bit partial sums
// and 1-bit spikes through the noc::NocFabric's per-plane router registers
// with two-phase (read-then-write) cycle semantics, integrating & firing at
// accumulation roots, and double-buffering axon registers across timesteps.
// It is aimed to be cycle-by-cycle equivalent to RTL in exactly the three
// senses the paper lists: (1) it runs the Table-I atomic operations, (2) it
// produces and routes the same data in neuron cores and NoCs, and (3) it
// yields execution statistics for architectural power estimation.
//
// Execution model: the 256 router planes of a tile run the *same* compiled
// op in lockstep ("each PS NoC is dedicated exclusively to the same neuron
// in each core", §II), so the engine executes each op as a word-level
// kernel over the plane mask — whole-u64 AND/OR/shift for the 1-bit spike
// planes, contiguous 64-plane strips (with an all-ones fast path the
// compiler vectorizes) for the 16-bit PS planes — instead of a per-plane
// scalar callback. The schedule is lowered once, at construction, into a
// map::ExecProgram with pre-resolved link ids and mask popcounts; SimStats
// stays exact because every counter is derived from popcounts of the same
// words the kernels operate on. Bit-exactness of this path against the
// abstract SNN reference is enforced by tests/test_fuzz_equivalence.cpp,
// and against a per-plane scalar reference by tests/test_exec_kernels.cpp.
//
// The division of labor with src/noc: the fabric owns everything physical
// about the two NoCs (router registers, link wiring, per-link traffic
// accounting); the simulator owns the neuron cores (axon registers, local
// partial sums, membrane potentials) and drives the fabric cycle by cycle
// from the lowered program.
//
// Layer pipelining: a unit at depth d processes frame timestep t during
// hardware iteration d + t, so one frame needs T + depth iterations; at
// steady state the array sustains one frame per T iterations.
#pragma once

#include <array>
#include <vector>

#include "mapper/exec_program.h"
#include "mapper/program.h"
#include "noc/link.h"
#include "snn/evaluate.h"

namespace sj::sim {

using map::MappedNetwork;
using map::Slot;

/// Execution statistics driving the power model and the paper-vs-measured
/// reports.
struct SimStats {
  i64 frames = 0;
  i64 iterations = 0;      // hardware timesteps executed
  u64 cycles = 0;          // iterations * cycles_per_timestep
  // Per-neuron atomic-op issue counts, indexed by core::EnergyOp.
  std::array<i64, 8> op_neurons{};
  i64 saturations = 0;     // adder/potential saturation events (expect 0)
  i64 spikes_fired = 0;
  i64 axon_spikes = 0;     // active axons observed at ACC time
  i64 axon_slots = 0;      // axon capacity sampled at ACC time
  /// Per-link NoC traffic (LinkId-indexed; see noc/link.h). The inter-chip
  /// aggregates the power model consumes are rolled up from links whose
  /// endpoints lie on different chips.
  noc::TrafficCounters noc;

  i64 interchip_ps_bits() const { return noc.interchip_ps_bits; }
  i64 interchip_spike_bits() const { return noc.interchip_spike_bits; }

  /// Mean fraction of axons spiking per ACC (the paper's 6.25 % for MNIST).
  double switching_activity() const {
    return axon_slots == 0 ? 0.0
                           : static_cast<double>(axon_spikes) / static_cast<double>(axon_slots);
  }
  void merge(const SimStats& o);
};

/// Spike trains observed at unit roots, re-aligned to logical timesteps
/// (index [unit][t]); directly comparable with snn::Trace.
struct HardwareTrace {
  std::vector<std::vector<BitVec>> units;
};

/// Result of simulating one input frame.
struct FrameResult {
  std::vector<i32> spike_counts;      // output unit, per neuron, over T steps
  std::vector<i64> final_potentials;  // residual membrane potentials
  i32 predicted = -1;
};

/// One Shenjing system instance. Not thread-safe; use one Simulator per
/// thread for parallel frame evaluation.
class Simulator {
 public:
  Simulator(const MappedNetwork& mapped, const snn::SnnNetwork& net);

  /// Simulates one frame (T + depth iterations). `trace`, when provided, is
  /// filled with per-unit root spike trains for equivalence checking.
  FrameResult run_frame(const Tensor& image, SimStats* stats = nullptr,
                        HardwareTrace* trace = nullptr);

  /// Energy bookkeeping for the one-off weight-load phase: per-neuron LD_WT
  /// issue count (#cores x neurons); charged once per deployment.
  i64 ldwt_neurons() const;

  const MappedNetwork& mapped() const { return *mapped_; }
  /// The NoC this simulator routes through (topology for traffic reports).
  const noc::NocFabric& fabric() const { return fabric_; }
  /// The lowered op stream this simulator executes (for tests/inspection).
  const map::ExecProgram& program() const { return prog_; }

 private:
  /// Neuron-core state. Router registers live in fabric_. Fixed-size
  /// contiguous arrays: the kernels address them in 64-plane strips, and
  /// `acc` is the reusable ACC scratch (no per-op heap allocation).
  struct CoreState {
    std::array<i16, 256> local_ps{};
    std::array<i32, 256> potential{};
    std::array<i32, 256> acc{};
    std::array<u64, 4> axon_cur{}, axon_n1{}, axon_n2{};
  };

  void reset();
  void run_iteration(i32 iter, const BitVec* input_spikes, SimStats& st);

  const MappedNetwork* mapped_;
  const snn::SnnNetwork* net_;
  noc::NocFabric fabric_;
  map::ExecProgram prog_;
  std::vector<CoreState> state_;
  // Per-core dense weight rows (axon-major, 256 i16 lanes per row) for
  // cores whose synapse rows are dense enough that a contiguous 256-lane
  // add beats the CSR tap walk; empty for sparse (conv-like) cores.
  std::vector<std::vector<i16>> dense_w_;
  // Precomputed touch sets (sorted, unique): the grid is mostly filler
  // tiles, so per-frame resets and per-iteration axon rotation only visit
  // state the program can actually write.
  std::vector<u32> touched_routers_;   // op cores + send destinations
  std::vector<u32> active_cores_;      // cores whose CoreState can change
  std::vector<noc::LinkId> touched_links_;
};

/// Accuracy of the *hardware* on (a prefix of) a dataset, evaluated with one
/// Simulator per worker thread. Also accumulates stats when given.
double hardware_accuracy(const MappedNetwork& mapped, const snn::SnnNetwork& net,
                         const nn::Dataset& data, usize max_frames = 0,
                         SimStats* stats = nullptr);

}  // namespace sj::sim
