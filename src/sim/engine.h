// Batched inference engine: one immutable compiled artifact, many mutable
// execution contexts.
//
// The split mirrors how Shenjing itself scales — fixed-function tiles whose
// configuration memories are written once, replicated behind the two NoCs —
// and how SpiNNaker-class systems get throughput: many identical processing
// elements running the same program against private state.
//
//   CompiledModel  (immutable, shared)      SimContext  (mutable, per frame
//     MappedNetwork (weights, schedule)       stream)
//     noc::NocTopology (links, wiring)          per-core state (axons, local
//     map::ExecProgram (lowered op stream)        PS, membrane potentials)
//     dense weight rows, touch sets             noc::NocState (router regs,
//                                                 staged writes, toggles)
//                                               SimStats (incl. per-link
//                                                 TrafficCounters)
//
// Engine::run_frame(ctx, image) executes one frame against one context with
// exactly the plane-parallel word kernels of the single-frame engine (PR 2);
// Engine::run_batch(images) fans frames out over the global ThreadPool, one
// context per worker shard, and merges per-context SimStats and per-link
// traffic counters in fixed context order. Because every frame starts from
// a full context reset (registers, axons, toggle history), a frame's
// results *and* its stats contribution are independent of which context ran
// it — so batch outputs and merged counters are bit-identical under 1 or N
// threads. tests/test_engine_batch.cpp enforces this.
//
// The thin sim::Simulator wrapper (simulator.h) binds one Engine to one
// context for single-stream callers.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "mapper/exec_program.h"
#include "obs/profile.h"
#include "mapper/pipeline.h"
#include "mapper/program.h"
#include "mapper/shard_plan.h"
#include "noc/fabric.h"
#include "snn/evaluate.h"

namespace sj::sim {

using map::MappedNetwork;
using map::Slot;

/// Execution statistics driving the power model and the paper-vs-measured
/// reports.
struct SimStats {
  i64 frames = 0;
  i64 iterations = 0;      // hardware timesteps executed
  u64 cycles = 0;          // schedule cycles: iterations * cycles_per_timestep
  // Wall-clock hardware cycles actually occupied: with the pipelined engine
  // (SHENJING_PIPELINE=1 and a feasible II) adjacent timesteps overlap and
  // a frame takes (total-1)*II + span < total*cycles_per_timestep cycles;
  // serially it equals `cycles`. Energy derives from the op census and is
  // unaffected — this is the latency/throughput side of the split.
  u64 effective_cycles = 0;
  // Per-neuron atomic-op issue counts, indexed by core::EnergyOp.
  std::array<i64, 8> op_neurons{};
  i64 saturations = 0;     // adder/potential saturation events (expect 0)
  i64 spikes_fired = 0;
  i64 axon_spikes = 0;     // active axons observed at ACC time
  i64 axon_slots = 0;      // axon capacity sampled at ACC time
  /// Per-link NoC traffic (LinkId-indexed; see noc/link.h). The inter-chip
  /// aggregates the power model consumes are rolled up from links whose
  /// endpoints lie on different chips.
  noc::TrafficCounters noc;

  i64 interchip_ps_bits() const { return noc.interchip_ps_bits; }
  i64 interchip_spike_bits() const { return noc.interchip_spike_bits; }

  /// Mean fraction of axons spiking per ACC (the paper's 6.25 % for MNIST).
  double switching_activity() const {
    return axon_slots == 0 ? 0.0
                           : static_cast<double>(axon_spikes) / static_cast<double>(axon_slots);
  }
  void merge(const SimStats& o);
};

/// Precompiled execution tables for the pipelined frame loop, one per
/// execution domain (the whole program for the plain path, one per chip
/// shard for the sharded path). Ops are re-sorted by pipelined issue cycle
/// so every per-cycle slice is a contiguous range; ACC commits land
/// acc_cycles after issue via `commits`.
struct PipeTables {
  struct Row {
    u32 rot_b = 0, rot_e = 0;  // [b, e) into rot_cores: axon rotations
    u32 tap_b = 0, tap_e = 0;  // [b, e) into taps: input injections
    u32 com_b = 0, com_e = 0;  // [b, e) into commits: ACC local-PS commits
    u32 op_b = 0, op_e = 0;    // [b, e) into ops: issue slice
  };
  std::vector<map::ExecOp> ops;  // re-sorted by (pipelined cycle, op index)
  std::vector<u32> commits;      // indices into ops (ACCs), by commit cycle
  std::vector<u32> rot_cores;
  std::vector<std::pair<u32, map::Slot>> taps;  // (flat input bit, slot)
  std::vector<Row> rows;                        // size = PipelineSchedule::span
};

/// One coordinator-driven slice of the pipelined sharded frame: absolute
/// cycles [b, e). Ranges split wherever the shards must agree on global
/// state: every iteration boundary k*II (input staging may overwrite a
/// buffer a still-draining iteration no longer reads), after every readout
/// cycle (the coordinator samples outputs between ranges), and before any
/// cycle whose ops read a router port that a cross-shard send can feed —
/// the static analogue of ShardPlan's dynamic link-dirty barriers.
struct PipeRange {
  u64 b = 0, e = 0;
  i32 stage_k = -1;    // stage encoder output for iteration k at range start
  i32 readout_k = -1;  // sample outputs/traces for iteration k at range end
};

/// Spike trains observed at unit roots, re-aligned to logical timesteps
/// (index [unit][t]); directly comparable with snn::Trace.
struct HardwareTrace {
  std::vector<std::vector<BitVec>> units;
};

/// Result of simulating one input frame.
struct FrameResult {
  std::vector<i32> spike_counts;      // output unit, per neuron, over T steps
  std::vector<i64> final_potentials;  // residual membrane potentials
  i32 predicted = -1;
};

/// Everything immutable about a mapped network, compiled once: the NoC
/// topology, the lowered op stream, the precompiled dense weight rows and
/// the touch sets that let per-frame resets skip filler tiles. Shared
/// read-only by every SimContext; keeps pointers to `mapped`/`net`, which
/// must outlive it (same contract as the original Simulator).
class CompiledModel {
 public:
  CompiledModel(const MappedNetwork& mapped, const snn::SnnNetwork& net);

  /// Weight-swap compile: takes the already-lowered topology, op stream and
  /// touch sets from `donor` and only rebuilds the weight-derived artifacts
  /// (dense rows), skipping the expensive lowering. REQUIREs `mapped` to be
  /// structurally identical to the donor's network — same grid, core
  /// placement, masks and schedule shape — so the donor's program executes
  /// `mapped` verbatim; only CoreWeights (and thresholds) may differ.
  CompiledModel(const MappedNetwork& mapped, const snn::SnnNetwork& net,
                const CompiledModel& donor);

  const MappedNetwork& mapped() const { return *mapped_; }
  const snn::SnnNetwork& net() const { return *net_; }
  const noc::NocTopology& topology() const { return topo_; }
  const map::ExecProgram& program() const { return prog_; }
  /// The chip-level partition of the program (see mapper/shard_plan.h),
  /// compiled once alongside the lowering and shared read-only; drives
  /// Engine::run_frame_sharded.
  const map::ShardPlan& shard_plan() const { return plan_; }

  /// Touch sets (sorted, unique): the routers/links the program can write
  /// and the cores whose CoreState can change. Per-context state is
  /// compacted to these — filler tiles allocate nothing.
  const std::vector<u32>& touched_routers() const { return touched_routers_; }
  const std::vector<u32>& active_cores() const { return active_cores_; }
  const std::vector<noc::LinkId>& touched_links() const { return touched_links_; }

  /// Energy bookkeeping for the one-off weight-load phase: per-neuron LD_WT
  /// issue count (#cores x neurons); charged once per deployment.
  i64 ldwt_neurons() const;

  /// The cross-timestep modulo schedule (mapper/pipeline.h). enabled() is
  /// false when the network is compiled with pipeline=0 or the analysis
  /// found no feasible II — the engine then runs the serial frame loop.
  const map::PipelineSchedule& pipeline() const { return pipe_; }

 private:
  friend class Engine;

  void build_dense_rows();
  void build_touch_sets();
  void build_pipeline_exec();

  const MappedNetwork* mapped_;
  const snn::SnnNetwork* net_;
  noc::NocTopology topo_;
  map::ExecProgram prog_;
  map::ShardPlan plan_;
  // Per-core dense weight rows (axon-major, 256 i16 lanes per row) for
  // cores whose synapse rows are dense enough that a contiguous 256-lane
  // add beats the CSR tap walk; empty for sparse (conv-like) cores.
  std::vector<std::vector<i16>> dense_w_;
  // Precomputed touch sets (sorted, unique): the grid is mostly filler
  // tiles, so per-frame resets and per-iteration axon rotation only visit
  // state the program can actually write.
  std::vector<u32> touched_routers_;   // op cores + send destinations
  std::vector<u32> active_cores_;      // cores whose CoreState can change
  std::vector<noc::LinkId> touched_links_;
  // Pipelined execution artifacts (build_pipeline_exec; empty when pipe_ is
  // disabled): the schedule itself, per-cycle tables for the plain path and
  // for each chip shard, the coordinator ranges of the sharded path, and the
  // core -> pending-buffer slot map for in-flight ACC gathers.
  map::PipelineSchedule pipe_;
  PipeTables pipe_plain_;
  std::vector<PipeTables> pipe_shards_;
  std::vector<PipeRange> pipe_ranges_;
  std::vector<i32> pend_slot_;  // core -> acc_pend_ pair index, -1 if no ACC
  i32 pend_count_ = 0;
};

/// The mutable state of one frame stream: neuron-core registers, one
/// NocState compacted to the model's touch sets (filler tiles allocate no
/// router state), and the stats the stream has accumulated since the last
/// take_stats(). Not thread-safe; one context per worker.
class SimContext {
 public:
  explicit SimContext(const CompiledModel& model);

  /// Stats accrued by run_frame calls on this context since construction or
  /// the last take_stats()/drain_stats().
  const SimStats& stats() const { return stats_; }
  /// Returns the accrued stats and zeroes the context's tally.
  SimStats take_stats();
  /// Merges the accrued tally into `into` and zeroes the tally in place,
  /// keeping the per-link table's allocation — the allocation-free drain
  /// for per-frame consumers (the serving workers).
  void drain_stats(SimStats& into);

  /// The context's router state (compaction introspection / tests).
  const noc::NocState& noc() const { return noc_; }

  /// Opt-in engine phase profiling (obs::PhaseProfile). When on, run_frame
  /// accrues reset/exec/frame wall time, and run_frame_sharded additionally
  /// accrues per-shard exec and barrier-wait per phase — shard imbalance
  /// measured, not inferred. When off (the default), frames pay one
  /// predictable branch per frame/phase and zero clock reads, keeping the
  /// bench-regression gate honest.
  void set_profiling(bool on) { profile_on_ = on; }
  bool profiling() const { return profile_on_; }
  const obs::PhaseProfile& profile() const { return profile_; }
  /// Merges the accrued profile into `into` and zeroes it in place, keeping
  /// vector allocations (the serving workers' drain, like drain_stats).
  void drain_profile(obs::PhaseProfile& into);

 private:
  friend class Engine;

  /// Neuron-core state. Router registers live in noc_. Fixed-size
  /// contiguous arrays: the kernels address them in 64-plane strips, and
  /// `acc` is the reusable ACC scratch (no per-op heap allocation).
  struct CoreState {
    std::array<i16, 256> local_ps{};
    std::array<i32, 256> potential{};
    std::array<i32, 256> acc{};
    std::array<u64, 4> axon_cur{}, axon_n1{}, axon_n2{};
  };

  noc::NocState noc_;
  std::vector<CoreState> cores_;
  SimStats stats_;
  // Sharded-run scratch (Engine::run_frame_sharded): one staging lane and
  // one stats tally per chip shard, lazily sized and reused across frames.
  // Shard tallies merge into stats_ in fixed shard order at frame end.
  std::vector<noc::NocState::ShardLane> lanes_;
  std::vector<SimStats> shard_stats_;
  // Opt-in phase profiling (set_profiling): the accrual target plus a
  // per-shard scratch each shard writes its phase duration into (disjoint
  // slots; the pool join publishes them to the coordinator).
  obs::PhaseProfile profile_;
  std::vector<u64> profile_scratch_;
  bool profile_on_ = false;
  // Pipelined-run scratch: double-buffered encoder output (iteration k's
  // input lives in pipe_input_[k & 1]; with at most two live iterations the
  // older one never reads a buffer being restaged) and the per-(ACC core,
  // iteration parity) pending partial-sum gathers awaiting their commit
  // acc_cycles later (2 * CompiledModel::pend_count_ entries).
  std::array<BitVec, 2> pipe_input_;
  std::vector<std::array<i32, 256>> acc_pend_;
};

/// One compiled model plus a pool of contexts. run_frame is const and
/// mutates only the context it is handed, so distinct contexts run
/// concurrently against one Engine. run_batch itself is NOT thread-safe —
/// it grows and reuses the internal context pool; concurrent batches need
/// one Engine each (cheap: the expensive part, lowering, is per-model).
class Engine {
 public:
  Engine(const MappedNetwork& mapped, const snn::SnnNetwork& net);

  /// Weight-swap compile: reuses `donor`'s lowered program and topology
  /// (see the CompiledModel donor constructor) — the cheap way to serve a
  /// retrained network whose mapping is unchanged.
  Engine(const MappedNetwork& mapped, const snn::SnnNetwork& net, const Engine& donor)
      : model_(mapped, net, donor.model_) {}

  const CompiledModel& model() const { return model_; }

  /// A fresh context for this model (callers may also own contexts
  /// directly; see SimContext).
  SimContext make_context() const { return SimContext(model_); }

  /// Grows the internal pool to at least `n` contexts and returns the pool
  /// size. Contexts are reused across run_batch calls.
  usize ensure_contexts(usize n);
  usize num_contexts() const { return contexts_.size(); }
  SimContext& context(usize i) { return *contexts_[i]; }

  /// Simulates one frame (T + depth iterations) on `ctx`, accruing stats
  /// into ctx.stats(). `trace`, when provided, is filled with per-unit root
  /// spike trains for equivalence checking. Semantically identical to the
  /// pre-batch Simulator::run_frame.
  FrameResult run_frame(SimContext& ctx, const Tensor& image,
                        HardwareTrace* trace = nullptr) const;

  /// Simulates one frame like run_frame, but fans the model's chip shards
  /// (model().shard_plan()) out over `pool` (the global ThreadPool when
  /// null) *within* each iteration. A persistent shard team is pinned to
  /// the frame: this thread plus up to num_shards-1 pool helpers stay
  /// resident for every phase of every iteration, synchronizing at the
  /// plan's phase barriers through a cooperative claim-based barrier
  /// (common/barrier.h) instead of a parallel_for launch per phase. Shards
  /// prefer the runner ShardPlan::assign_workers gave them and steal the
  /// rest; idle runners help drain the cross-shard commit at each barrier.
  /// Results, SimStats and per-link traffic counters are bit-identical to
  /// run_frame under any thread count (tests/test_shard.cpp).
  /// Latency-oriented: one frame finishes sooner on a multi-chip model;
  /// run_batch still wins on throughput when independent frames queue deep.
  FrameResult run_frame_sharded(SimContext& ctx, const Tensor& image,
                                HardwareTrace* trace = nullptr,
                                ThreadPool* pool = nullptr) const;

  /// Simulates every frame of `images`, fanning contiguous shards out over
  /// `pool` (the global ThreadPool when null), one pooled context per
  /// shard. Results are indexed like `images`. Per-context stats — SimStats
  /// and per-link traffic counters — are merged into `stats` in fixed
  /// context order, so outputs and merged counters are bit-identical
  /// regardless of thread count.
  std::vector<FrameResult> run_batch(std::span<const Tensor> images,
                                     SimStats* stats = nullptr,
                                     ThreadPool* pool = nullptr);

 private:
  // Per-frame state of the persistent shard team (defined in engine.cpp):
  // one PhaseTeam barrier plus shard->runner preference orders. Heap-shared
  // with the pool helpers so a late-scheduled helper can never touch freed
  // state.
  struct Team;

  void reset(SimContext& ctx) const;
  void run_iteration(SimContext& ctx, const BitVec* input_spikes, SimStats& st) const;
  // One hardware timestep of the sharded path. With `team` null, shards run
  // serially on this thread (degenerate pools); otherwise this thread
  // coordinates the persistent team: open each phase epoch, participate as
  // runner 0, and time the exec/drain stages when profiling.
  void run_iteration_sharded(SimContext& ctx, const BitVec* input_spikes,
                             Team* team) const;
  // One shard's slice of one phase: axon rotation + input injection (phase
  // 0 only), then the phase's cycles with local lane commits.
  void exec_shard_phase(SimContext& ctx, usize s, u32 phase,
                        const BitVec* input_spikes) const;
  // Team runner bodies (static: helpers may outlive the frame, and must not
  // invoke anything through a possibly-dead `this`; the engine pointer in
  // `Team` is only dereferenced behind a successful claim, which can only
  // happen while run_frame_sharded is still on the coordinator's stack).
  static void team_exec_epoch(const Engine* eng, Team& w, u64 e, usize runner);
  static void team_drain_epoch(Team& w, u64 e, usize runner);
  static void team_helper_loop(const std::shared_ptr<Team>& w, usize runner);
  // The shared frame driver: encoder, iteration loop, readout and traces.
  // `iter(ctx, input_spikes)` runs one hardware timestep.
  template <typename RunIter>
  FrameResult run_frame_impl(SimContext& ctx, const Tensor& image, HardwareTrace* trace,
                             RunIter&& iter) const;
  // The pipelined frame drivers (dispatched to by run_frame /
  // run_frame_sharded when model().pipeline().enabled()): the modulo
  // schedule interleaves the tail of iteration k-1 with the head of k,
  // executing the same ops in a valid linearization of the dependence
  // order — results, op census and per-link counters stay bit-identical to
  // the serial loop; only cycle accounting (effective_cycles) improves.
  FrameResult run_frame_pipelined(SimContext& ctx, const Tensor& image,
                                  HardwareTrace* trace) const;
  FrameResult run_frame_sharded_pipelined(SimContext& ctx, const Tensor& image,
                                          HardwareTrace* trace, ThreadPool* pool) const;
  // One shard's slice of absolute cycles [b, e) of the pipelined frame
  // (lane commits per cycle; cross-shard traffic drains at range barriers).
  void exec_shard_pipe_range(SimContext& ctx, usize s, u64 b, u64 e) const;
  // Samples iteration k's readout (output spike counts past output_depth,
  // per-unit traces within their logical windows) when its readout cycle
  // retires; called in increasing-k order by both pipelined drivers.
  void pipe_sample(SimContext& ctx, i32 k, FrameResult& res, HardwareTrace* trace) const;
  // One iteration-slice of one absolute pipelined cycle: row r = a - k*II of
  // `pt` executed for iteration k (rotations, injections while k < T,
  // pending-ACC commits, then the issue slice).
  template <typename Sender>
  void exec_pipe_cycle(SimContext& ctx, const PipeTables& pt, u32 r, i32 k, SimStats& st,
                       Sender&& send) const;
  // Commits a pending pipelined ACC gather into local PS (the write half of
  // the issue/commit split), acc_cycles after exec_ops gathered it.
  void acc_commit(SimContext& ctx, const map::ExecOp& op, i32 parity, SimStats& st) const;
  // The per-opcode word kernels over ops[begin, end); `send` routes staged
  // writes (shared queue or shard lane — the only difference between the
  // unsharded and sharded paths). `acc_parity` < 0 runs ACC serially
  // (gather + immediate local-PS commit); otherwise ACC only gathers into
  // the (core, parity) pending buffer and acc_commit finishes it later.
  template <typename Sender>
  void exec_ops(SimContext& ctx, const map::ExecOp* ops, u32 begin, u32 end, SimStats& st,
                Sender&& send, i32 acc_parity = -1) const;
  // Merges per-shard tallies into ctx.stats() in shard order and zeroes
  // them, keeping the per-link tables allocated.
  void drain_shard_stats(SimContext& ctx) const;

  CompiledModel model_;
  std::vector<std::unique_ptr<SimContext>> contexts_;
};

}  // namespace sj::sim
