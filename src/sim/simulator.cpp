#include "sim/simulator.h"

#include <atomic>

#include "common/fixed.h"
#include "common/thread_pool.h"

namespace sj::sim {

namespace {

// Bit helpers for the neuron core's bit-packed axon registers; one
// implementation shared with the router registers (noc/router.h).
inline bool bit_get(const std::array<u64, 4>& w, u16 p) {
  return noc::Router::bit_get(w, p);
}
inline void bit_set(std::array<u64, 4>& w, u16 p, bool v) {
  noc::Router::bit_set(w, p, v);
}

}  // namespace

void SimStats::merge(const SimStats& o) {
  frames += o.frames;
  iterations += o.iterations;
  cycles += o.cycles;
  for (usize i = 0; i < op_neurons.size(); ++i) op_neurons[i] += o.op_neurons[i];
  saturations += o.saturations;
  spikes_fired += o.spikes_fired;
  axon_spikes += o.axon_spikes;
  axon_slots += o.axon_slots;
  noc.merge(o.noc);
}

Simulator::Simulator(const MappedNetwork& mapped, const snn::SnnNetwork& net)
    : mapped_(&mapped), net_(&net), fabric_(map::make_fabric(mapped)) {
  const usize n = mapped.cores.size();
  state_.resize(n);
  for (auto& cs : state_) {
    cs.local_ps.assign(256, 0);
    cs.potential.assign(256, 0);
  }
  // Group schedule by cycle (schedule is sorted).
  by_cycle_.assign(mapped.cycles_per_timestep, {});
  for (const auto& op : mapped.schedule) {
    by_cycle_[op.cycle].push_back(&op);
  }
}

void Simulator::reset() {
  for (auto& cs : state_) {
    std::fill(cs.local_ps.begin(), cs.local_ps.end(), i16{0});
    std::fill(cs.potential.begin(), cs.potential.end(), i32{0});
    cs.axon_cur = {};
    cs.axon_n1 = {};
    cs.axon_n2 = {};
  }
  fabric_.reset();
}

i64 Simulator::ldwt_neurons() const {
  i64 n = 0;
  for (const auto& c : mapped_->cores) {
    if (!c.filler) n += c.neuron_mask.popcount();
  }
  return n;
}

void Simulator::run_iteration(i32 iter, const BitVec* input_spikes, SimStats& st) {
  (void)iter;
  const auto& cores = mapped_->cores;
  const i32 ps_bits = mapped_->arch.noc_bits;
  const i32 lps_bits = mapped_->arch.local_ps_bits;
  const i32 pot_bits = mapped_->arch.potential_bits;

  // Advance axon double-buffers.
  for (auto& cs : state_) {
    cs.axon_cur = cs.axon_n1;
    cs.axon_n1 = cs.axon_n2;
    cs.axon_n2 = {};
  }
  // Testbench injection: input spikes of this iteration land in axon_n1 and
  // are consumed by depth-1 cores next iteration.
  if (input_spikes != nullptr) {
    for (usize g = 0; g < mapped_->input_taps.size(); ++g) {
      if (!input_spikes->get(g)) continue;
      for (const Slot& s : mapped_->input_taps[g]) {
        bit_set(state_[s.core].axon_n1, s.plane, true);
      }
    }
  }

  for (u32 cyc = 0; cyc < mapped_->cycles_per_timestep; ++cyc) {
    if (by_cycle_[cyc].empty()) continue;
    for (const map::TimedOp* top : by_cycle_[cyc]) {
      const u32 c = top->core;
      CoreState& cs = state_[c];
      noc::Router& rt = fabric_.router(c);
      const map::MappedCore& mc = cores[c];
      const core::AtomicOp& op = top->op;
      st.op_neurons[static_cast<usize>(core::energy_op_of(op.code))] +=
          top->mask.popcount();
      switch (op.code) {
        case core::OpCode::Acc: {
          std::fill(cs.local_ps.begin(), cs.local_ps.end(), i16{0});
          std::vector<i32> acc(256, 0);
          mc.axon_mask.for_each([&](u16 a) {
            ++st.axon_slots;
            if (!bit_get(cs.axon_cur, a)) return;
            ++st.axon_spikes;
            const auto [lo, hi] = mc.weights.row(a);
            for (u32 t = lo; t < hi; ++t) {
              acc[mc.weights.taps[t].first] += mc.weights.taps[t].second;
            }
          });
          mc.neuron_mask.for_each([&](u16 p) {
            bool sat = false;
            cs.local_ps[p] =
                static_cast<i16>(saturating_add(acc[p], 0, lps_bits, &sat));
            if (sat) ++st.saturations;
          });
          break;
        }
        case core::OpCode::PsSum: {
          // In-router adder: OP1 is the running sum (consecutive add) or the
          // neuron core's local PS; OP2 arrives on the $SRC port register.
          top->mask.for_each([&](u16 p) {
            const i64 op1 = op.consec ? rt.sum_buf(p) : cs.local_ps[p];
            rt.ps_sum(p, op1, op.src, ps_bits, &st.saturations);
          });
          break;
        }
        case core::OpCode::PsSend: {
          if (op.eject) {
            top->mask.for_each([&](u16 p) {
              rt.set_eject(p, op.from_sum_buf ? rt.sum_buf(p) : cs.local_ps[p]);
            });
          } else {
            top->mask.for_each([&](u16 p) {
              fabric_.send_ps(c, op.dst, p,
                              op.from_sum_buf ? rt.sum_buf(p) : cs.local_ps[p],
                              st.noc);
            });
          }
          break;
        }
        case core::OpCode::PsBypass: {
          top->mask.for_each([&](u16 p) {
            fabric_.send_ps(c, op.dst, p, rt.ps_in(op.src, p), st.noc);
          });
          break;
        }
        case core::OpCode::SpkSpike: {
          top->mask.for_each([&](u16 p) {
            const i32 add = op.sum_or_local ? rt.eject(p) : cs.local_ps[p];
            bool sat = false;
            i64 v = saturating_add(cs.potential[p], add, pot_bits, &sat);
            if (sat) ++st.saturations;
            bool fire = false;
            if (v >= mc.threshold) {
              v -= mc.threshold;
              fire = true;
              ++st.spikes_fired;
            }
            cs.potential[p] = static_cast<i32>(v);
            rt.set_spike_out(p, fire);
          });
          break;
        }
        case core::OpCode::SpkSend: {
          top->mask.for_each([&](u16 p) {
            fabric_.send_spike(c, op.dst, p, rt.spike_out(p), st.noc);
          });
          break;
        }
        case core::OpCode::SpkBypass: {
          top->mask.for_each([&](u16 p) {
            fabric_.send_spike(c, op.dst, p, rt.spike_in(op.src, p), st.noc);
          });
          break;
        }
        case core::OpCode::SpkRecv:
        case core::OpCode::SpkRecvForward: {
          // Axon delivery OR-accumulates, and the axon buffers are only read
          // at the next iteration boundary, so the write needs no staging.
          auto& axon = op.hold ? cs.axon_n2 : cs.axon_n1;
          top->mask.for_each([&](u16 p) {
            if (rt.spike_in(op.src, p)) bit_set(axon, p, true);
          });
          if (op.code == core::OpCode::SpkRecvForward) {
            top->mask.for_each([&](u16 p) {
              fabric_.send_spike(c, op.dst, p, rt.spike_in(op.src, p), st.noc);
            });
          }
          break;
        }
        case core::OpCode::LdWt:
          break;  // weights are preloaded; energy accounted separately
      }
    }
    // Two-phase commit: staged port writes become visible from cycle+1 on.
    fabric_.commit_cycle();
  }
  ++st.iterations;
  st.cycles += mapped_->cycles_per_timestep;
}

FrameResult Simulator::run_frame(const Tensor& image, SimStats* stats,
                                 HardwareTrace* trace) {
  reset();
  const i32 T = mapped_->timesteps;
  const i32 total = T + mapped_->output_depth;
  snn::InputEncoder enc(image, net_->input_scale);

  const auto& out_slots = mapped_->output_slots();
  FrameResult res;
  res.spike_counts.assign(out_slots.size(), 0);
  res.final_potentials.assign(out_slots.size(), 0);
  if (trace != nullptr) {
    trace->units.assign(net_->units.size(), {});
    for (usize u = 0; u < net_->units.size(); ++u) {
      trace->units[u].reserve(static_cast<usize>(T));
    }
  }

  SimStats local;
  local.frames = 1;
  for (i32 k = 0; k < total; ++k) {
    BitVec in;
    const bool have_input = k < T;
    if (have_input) in = enc.step();
    run_iteration(k, have_input ? &in : nullptr, local);

    // Readout: output-unit spikes within its logical window.
    if (k >= mapped_->output_depth) {
      for (usize j = 0; j < out_slots.size(); ++j) {
        if (fabric_.router(out_slots[j].core).spike_out(out_slots[j].plane)) {
          ++res.spike_counts[j];
        }
      }
    }
    // Per-unit traces, re-aligned to logical timesteps.
    if (trace != nullptr) {
      for (usize u = 0; u < net_->units.size(); ++u) {
        const i32 d = mapped_->unit_depth[u];
        if (k >= d && k < d + T) {
          const auto& slots = mapped_->unit_slots[u];
          BitVec bv(slots.size());
          for (usize j = 0; j < slots.size(); ++j) {
            bv.set(j, fabric_.router(slots[j].core).spike_out(slots[j].plane));
          }
          trace->units[u].push_back(std::move(bv));
        }
      }
    }
  }
  for (usize j = 0; j < out_slots.size(); ++j) {
    res.final_potentials[j] = state_[out_slots[j].core].potential[out_slots[j].plane];
  }
  res.predicted = snn::EvalResult::decide(res.spike_counts, res.final_potentials);
  if (stats != nullptr) stats->merge(local);
  return res;
}

double hardware_accuracy(const MappedNetwork& mapped, const snn::SnnNetwork& net,
                         const nn::Dataset& data, usize max_frames, SimStats* stats) {
  const usize n = max_frames == 0 ? data.size() : std::min(max_frames, data.size());
  SJ_REQUIRE(n > 0, "hardware_accuracy: no frames");
  ThreadPool& pool = ThreadPool::global();
  const usize shards = std::min<usize>(n, std::max<usize>(1, pool.num_threads()));
  std::vector<SimStats> shard_stats(shards);
  std::atomic<i64> correct{0};
  pool.parallel_for(shards, [&](usize s) {
    Simulator sim(mapped, net);
    const usize lo = s * n / shards;
    const usize hi = (s + 1) * n / shards;
    for (usize i = lo; i < hi; ++i) {
      const FrameResult r = sim.run_frame(data.images[i], &shard_stats[s]);
      if (r.predicted == data.labels[i]) correct.fetch_add(1, std::memory_order_relaxed);
    }
  });
  if (stats != nullptr) {
    for (const auto& ss : shard_stats) stats->merge(ss);
  }
  return static_cast<double>(correct.load()) / static_cast<double>(n);
}

}  // namespace sj::sim
