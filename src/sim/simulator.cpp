#include "sim/simulator.h"

#include <atomic>

#include "common/fixed.h"
#include "common/thread_pool.h"

namespace sj::sim {

namespace {

inline bool bit_get(const std::array<u64, 4>& w, u16 p) {
  return (w[p >> 6] >> (p & 63)) & 1u;
}
inline void bit_set(std::array<u64, 4>& w, u16 p, bool v) {
  const u64 m = u64{1} << (p & 63);
  if (v) w[p >> 6] |= m;
  else w[p >> 6] &= ~m;
}

}  // namespace

void SimStats::merge(const SimStats& o) {
  frames += o.frames;
  iterations += o.iterations;
  cycles += o.cycles;
  for (usize i = 0; i < op_neurons.size(); ++i) op_neurons[i] += o.op_neurons[i];
  saturations += o.saturations;
  spikes_fired += o.spikes_fired;
  axon_spikes += o.axon_spikes;
  axon_slots += o.axon_slots;
  interchip_ps_bits += o.interchip_ps_bits;
  interchip_spike_bits += o.interchip_spike_bits;
}

Simulator::Simulator(const MappedNetwork& mapped, const snn::SnnNetwork& net)
    : mapped_(&mapped), net_(&net) {
  const usize n = mapped.cores.size();
  state_.resize(n);
  for (auto& cs : state_) {
    for (auto& v : cs.ps_in) v.assign(256, 0);
    cs.local_ps.assign(256, 0);
    cs.sum_buf.assign(256, 0);
    cs.eject.assign(256, 0);
    cs.potential.assign(256, 0);
  }
  // Coordinate -> core lookup for neighbor resolution.
  std::vector<std::vector<u32>> grid(static_cast<usize>(mapped.grid_rows),
                                     std::vector<u32>(static_cast<usize>(mapped.grid_cols), 0));
  for (u32 c = 0; c < n; ++c) {
    grid[static_cast<usize>(mapped.cores[c].pos.row)]
        [static_cast<usize>(mapped.cores[c].pos.col)] = c;
  }
  for (int d = 0; d < 4; ++d) neighbor_[d].assign(n, ~u32{0});
  for (u32 c = 0; c < n; ++c) {
    const Coord p = mapped.cores[c].pos;
    if (p.row > 0) neighbor_[static_cast<int>(Dir::North)][c] =
        grid[static_cast<usize>(p.row - 1)][static_cast<usize>(p.col)];
    if (p.row + 1 < mapped.grid_rows) neighbor_[static_cast<int>(Dir::South)][c] =
        grid[static_cast<usize>(p.row + 1)][static_cast<usize>(p.col)];
    if (p.col + 1 < mapped.grid_cols) neighbor_[static_cast<int>(Dir::East)][c] =
        grid[static_cast<usize>(p.row)][static_cast<usize>(p.col + 1)];
    if (p.col > 0) neighbor_[static_cast<int>(Dir::West)][c] =
        grid[static_cast<usize>(p.row)][static_cast<usize>(p.col - 1)];
  }
  // Group schedule by cycle (schedule is sorted).
  by_cycle_.assign(mapped.cycles_per_timestep, {});
  for (const auto& op : mapped.schedule) {
    by_cycle_[op.cycle].push_back(&op);
  }
}

u32 Simulator::neighbor_core(u32 c, Dir d) const {
  const u32 n = neighbor_[static_cast<int>(d)][c];
  SJ_ASSERT(n != ~u32{0}, "sim: route off grid edge");
  return n;
}

void Simulator::reset() {
  for (auto& cs : state_) {
    for (auto& v : cs.ps_in) std::fill(v.begin(), v.end(), i16{0});
    std::fill(cs.local_ps.begin(), cs.local_ps.end(), i16{0});
    std::fill(cs.sum_buf.begin(), cs.sum_buf.end(), i16{0});
    std::fill(cs.eject.begin(), cs.eject.end(), i16{0});
    std::fill(cs.potential.begin(), cs.potential.end(), i32{0});
    cs.spk_in = {};
    cs.spike_out = {};
    cs.axon_cur = {};
    cs.axon_n1 = {};
    cs.axon_n2 = {};
  }
}

i64 Simulator::ldwt_neurons() const {
  i64 n = 0;
  for (const auto& c : mapped_->cores) {
    if (!c.filler) n += c.neuron_mask.popcount();
  }
  return n;
}

void Simulator::run_iteration(i32 iter, const BitVec* input_spikes, SimStats& st) {
  (void)iter;
  const auto& cores = mapped_->cores;
  const i32 ps_bits = mapped_->arch.noc_bits;
  const i32 lps_bits = mapped_->arch.local_ps_bits;
  const i32 pot_bits = mapped_->arch.potential_bits;

  // Advance axon double-buffers.
  for (auto& cs : state_) {
    cs.axon_cur = cs.axon_n1;
    cs.axon_n1 = cs.axon_n2;
    cs.axon_n2 = {};
  }
  // Testbench injection: input spikes of this iteration land in axon_n1 and
  // are consumed by depth-1 cores next iteration.
  if (input_spikes != nullptr) {
    for (usize g = 0; g < mapped_->input_taps.size(); ++g) {
      if (!input_spikes->get(g)) continue;
      for (const Slot& s : mapped_->input_taps[g]) {
        bit_set(state_[s.core].axon_n1, s.plane, true);
      }
    }
  }

  // Deferred same-cycle writes (two-phase semantics).
  struct PsWrite {
    u32 core;
    u8 port;
    u16 plane;
    i16 value;
  };
  struct SpkWrite {
    u32 core;
    u8 port;  // 0..3 = spk_in port; 4 = axon_n1; 5 = axon_n2
    u16 plane;
    bool value;
  };
  std::vector<PsWrite> ps_writes;
  std::vector<SpkWrite> spk_writes;

  for (u32 cyc = 0; cyc < mapped_->cycles_per_timestep; ++cyc) {
    if (by_cycle_[cyc].empty()) continue;
    ps_writes.clear();
    spk_writes.clear();
    for (const map::TimedOp* top : by_cycle_[cyc]) {
      const u32 c = top->core;
      CoreState& cs = state_[c];
      const map::MappedCore& mc = cores[c];
      const core::AtomicOp& op = top->op;
      st.op_neurons[static_cast<usize>(core::energy_op_of(op.code))] +=
          top->mask.popcount();
      switch (op.code) {
        case core::OpCode::Acc: {
          std::fill(cs.local_ps.begin(), cs.local_ps.end(), i16{0});
          std::vector<i32> acc(256, 0);
          mc.axon_mask.for_each([&](u16 a) {
            ++st.axon_slots;
            if (!bit_get(cs.axon_cur, a)) return;
            ++st.axon_spikes;
            const auto [lo, hi] = mc.weights.row(a);
            for (u32 t = lo; t < hi; ++t) {
              acc[mc.weights.taps[t].first] += mc.weights.taps[t].second;
            }
          });
          mc.neuron_mask.for_each([&](u16 p) {
            bool sat = false;
            cs.local_ps[p] =
                static_cast<i16>(saturating_add(acc[p], 0, lps_bits, &sat));
            if (sat) ++st.saturations;
          });
          break;
        }
        case core::OpCode::PsSum: {
          const auto& in = cs.ps_in[static_cast<usize>(op.src)];
          top->mask.for_each([&](u16 p) {
            const i64 op1 = op.consec ? cs.sum_buf[p] : cs.local_ps[p];
            bool sat = false;
            cs.sum_buf[p] = static_cast<i16>(saturating_add(op1, in[p], ps_bits, &sat));
            if (sat) ++st.saturations;
          });
          break;
        }
        case core::OpCode::PsSend: {
          if (op.eject) {
            top->mask.for_each([&](u16 p) {
              cs.eject[p] = op.from_sum_buf ? cs.sum_buf[p] : cs.local_ps[p];
            });
          } else {
            const u32 nb = neighbor_core(c, op.dst);
            const u8 port = static_cast<u8>(opposite(op.dst));
            const bool cross =
                mapped_->chip_of(mc.pos) != mapped_->chip_of(cores[nb].pos);
            top->mask.for_each([&](u16 p) {
              ps_writes.push_back(
                  PsWrite{nb, port, p,
                          op.from_sum_buf ? cs.sum_buf[p] : cs.local_ps[p]});
            });
            if (cross) st.interchip_ps_bits += static_cast<i64>(top->mask.popcount()) * ps_bits;
          }
          break;
        }
        case core::OpCode::PsBypass: {
          const u32 nb = neighbor_core(c, op.dst);
          const u8 port = static_cast<u8>(opposite(op.dst));
          const auto& in = cs.ps_in[static_cast<usize>(op.src)];
          const bool cross = mapped_->chip_of(mc.pos) != mapped_->chip_of(cores[nb].pos);
          top->mask.for_each([&](u16 p) {
            ps_writes.push_back(PsWrite{nb, port, p, in[p]});
          });
          if (cross) st.interchip_ps_bits += static_cast<i64>(top->mask.popcount()) * ps_bits;
          break;
        }
        case core::OpCode::SpkSpike: {
          top->mask.for_each([&](u16 p) {
            const i32 add = op.sum_or_local ? cs.eject[p] : cs.local_ps[p];
            bool sat = false;
            i64 v = saturating_add(cs.potential[p], add, pot_bits, &sat);
            if (sat) ++st.saturations;
            bool fire = false;
            if (v >= mc.threshold) {
              v -= mc.threshold;
              fire = true;
              ++st.spikes_fired;
            }
            cs.potential[p] = static_cast<i32>(v);
            bit_set(cs.spike_out, p, fire);
          });
          break;
        }
        case core::OpCode::SpkSend: {
          const u32 nb = neighbor_core(c, op.dst);
          const u8 port = static_cast<u8>(opposite(op.dst));
          const bool cross = mapped_->chip_of(mc.pos) != mapped_->chip_of(cores[nb].pos);
          top->mask.for_each([&](u16 p) {
            spk_writes.push_back(SpkWrite{nb, port, p, bit_get(cs.spike_out, p)});
          });
          if (cross) st.interchip_spike_bits += top->mask.popcount();
          break;
        }
        case core::OpCode::SpkBypass: {
          const u32 nb = neighbor_core(c, op.dst);
          const u8 port = static_cast<u8>(opposite(op.dst));
          const auto& in = cs.spk_in[static_cast<usize>(op.src)];
          const bool cross = mapped_->chip_of(mc.pos) != mapped_->chip_of(cores[nb].pos);
          top->mask.for_each([&](u16 p) {
            spk_writes.push_back(SpkWrite{nb, port, p, bit_get(in, p)});
          });
          if (cross) st.interchip_spike_bits += top->mask.popcount();
          break;
        }
        case core::OpCode::SpkRecv:
        case core::OpCode::SpkRecvForward: {
          const auto& in = cs.spk_in[static_cast<usize>(op.src)];
          const u8 buf = op.hold ? u8{5} : u8{4};
          top->mask.for_each([&](u16 p) {
            if (bit_get(in, p)) spk_writes.push_back(SpkWrite{c, buf, p, true});
          });
          if (op.code == core::OpCode::SpkRecvForward) {
            const u32 nb = neighbor_core(c, op.dst);
            const u8 port = static_cast<u8>(opposite(op.dst));
            top->mask.for_each([&](u16 p) {
              spk_writes.push_back(SpkWrite{nb, port, p, bit_get(in, p)});
            });
          }
          break;
        }
        case core::OpCode::LdWt:
          break;  // weights are preloaded; energy accounted separately
      }
    }
    // Apply writes (visible from cycle+1 on).
    for (const PsWrite& w : ps_writes) {
      state_[w.core].ps_in[w.port][w.plane] = w.value;
    }
    for (const SpkWrite& w : spk_writes) {
      CoreState& tgt = state_[w.core];
      if (w.port < 4) bit_set(tgt.spk_in[w.port], w.plane, w.value);
      else if (w.port == 4) {
        if (w.value) bit_set(tgt.axon_n1, w.plane, true);
      } else {
        if (w.value) bit_set(tgt.axon_n2, w.plane, true);
      }
    }
  }
  ++st.iterations;
  st.cycles += mapped_->cycles_per_timestep;
}

FrameResult Simulator::run_frame(const Tensor& image, SimStats* stats,
                                 HardwareTrace* trace) {
  reset();
  const i32 T = mapped_->timesteps;
  const i32 total = T + mapped_->output_depth;
  snn::InputEncoder enc(image, net_->input_scale);

  const auto& out_slots = mapped_->output_slots();
  FrameResult res;
  res.spike_counts.assign(out_slots.size(), 0);
  res.final_potentials.assign(out_slots.size(), 0);
  if (trace != nullptr) {
    trace->units.assign(net_->units.size(), {});
    for (usize u = 0; u < net_->units.size(); ++u) {
      trace->units[u].reserve(static_cast<usize>(T));
    }
  }

  SimStats local;
  local.frames = 1;
  for (i32 k = 0; k < total; ++k) {
    BitVec in;
    const bool have_input = k < T;
    if (have_input) in = enc.step();
    run_iteration(k, have_input ? &in : nullptr, local);

    // Readout: output-unit spikes within its logical window.
    if (k >= mapped_->output_depth) {
      for (usize j = 0; j < out_slots.size(); ++j) {
        if (bit_get(state_[out_slots[j].core].spike_out, out_slots[j].plane)) {
          ++res.spike_counts[j];
        }
      }
    }
    // Per-unit traces, re-aligned to logical timesteps.
    if (trace != nullptr) {
      for (usize u = 0; u < net_->units.size(); ++u) {
        const i32 d = mapped_->unit_depth[u];
        if (k >= d && k < d + T) {
          const auto& slots = mapped_->unit_slots[u];
          BitVec bv(slots.size());
          for (usize j = 0; j < slots.size(); ++j) {
            bv.set(j, bit_get(state_[slots[j].core].spike_out, slots[j].plane));
          }
          trace->units[u].push_back(std::move(bv));
        }
      }
    }
  }
  for (usize j = 0; j < out_slots.size(); ++j) {
    res.final_potentials[j] = state_[out_slots[j].core].potential[out_slots[j].plane];
  }
  res.predicted = snn::EvalResult::decide(res.spike_counts, res.final_potentials);
  if (stats != nullptr) stats->merge(local);
  return res;
}

double hardware_accuracy(const MappedNetwork& mapped, const snn::SnnNetwork& net,
                         const nn::Dataset& data, usize max_frames, SimStats* stats) {
  const usize n = max_frames == 0 ? data.size() : std::min(max_frames, data.size());
  SJ_REQUIRE(n > 0, "hardware_accuracy: no frames");
  ThreadPool& pool = ThreadPool::global();
  const usize shards = std::min<usize>(n, std::max<usize>(1, pool.num_threads()));
  std::vector<SimStats> shard_stats(shards);
  std::atomic<i64> correct{0};
  pool.parallel_for(shards, [&](usize s) {
    Simulator sim(mapped, net);
    const usize lo = s * n / shards;
    const usize hi = (s + 1) * n / shards;
    for (usize i = lo; i < hi; ++i) {
      const FrameResult r = sim.run_frame(data.images[i], &shard_stats[s]);
      if (r.predicted == data.labels[i]) correct.fetch_add(1, std::memory_order_relaxed);
    }
  });
  if (stats != nullptr) {
    for (const auto& ss : shard_stats) stats->merge(ss);
  }
  return static_cast<double>(correct.load()) / static_cast<double>(n);
}

}  // namespace sj::sim
