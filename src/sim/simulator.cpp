#include "sim/simulator.h"

#include <atomic>

#include "common/fixed.h"
#include "common/thread_pool.h"

namespace sj::sim {

namespace {

// Bit helper for the neuron core's bit-packed axon registers; one
// implementation shared with the router registers (noc/router.h).
inline void bit_set(std::array<u64, 4>& w, u16 p, bool v) {
  noc::Router::bit_set(w, p, v);
}

// Saturating clamp with exact overflow counting: identical result and
// saturation tally to common/fixed.h's saturating_add, but branchless so the
// per-word kernels below stay straight-line code.
inline i64 clamp_count(i64 v, i64 lo, i64 hi, i64& sat) {
  const i64 c = v < lo ? lo : (v > hi ? hi : v);
  sat += (c != v);
  return c;
}

}  // namespace

void SimStats::merge(const SimStats& o) {
  frames += o.frames;
  iterations += o.iterations;
  cycles += o.cycles;
  for (usize i = 0; i < op_neurons.size(); ++i) op_neurons[i] += o.op_neurons[i];
  saturations += o.saturations;
  spikes_fired += o.spikes_fired;
  axon_spikes += o.axon_spikes;
  axon_slots += o.axon_slots;
  noc.merge(o.noc);
}

Simulator::Simulator(const MappedNetwork& mapped, const snn::SnnNetwork& net)
    : mapped_(&mapped),
      net_(&net),
      fabric_(map::make_fabric(mapped)),
      prog_(map::lower_program(mapped, fabric_)) {
  state_.resize(mapped.cores.size());

  // Precompile dense weight rows where they pay off. FC cores have ~fully
  // dense synapse rows, so the ACC gather becomes one contiguous 256-lane
  // add per spiking axon (adding the explicit zeros is exact — integer adds
  // of 0 change nothing). Conv cores keep the CSR walk: their rows hold
  // k*k*cin taps, far below the ~64-tap break-even of a full-width add.
  dense_w_.resize(mapped.cores.size());
  for (usize c = 0; c < mapped.cores.size(); ++c) {
    const map::MappedCore& mc = mapped.cores[c];
    const i64 axons = mc.axon_mask.popcount();
    if (axons == 0) continue;
    const i64 taps = static_cast<i64>(mc.weights.taps.size());
    if (taps < axons * 64) continue;
    auto& dw = dense_w_[c];
    dw.assign(static_cast<usize>(256) * 256, 0);
    // Fold in i32: duplicate taps to one (axon, plane) sum exactly as the
    // CSR walk would. If the folded row value cannot round-trip through the
    // i16 lane (possible only with duplicates), densifying would change
    // results — keep that core on the CSR path instead.
    bool fits = true;
    mc.axon_mask.for_each([&](u16 a) {
      const auto [lo, hi] = mc.weights.row(a);
      std::array<i32, 256> row{};
      for (u32 t = lo; t < hi; ++t) row[mc.weights.taps[t].first] += mc.weights.taps[t].second;
      i16* out = dw.data() + static_cast<usize>(a) * 256;
      for (int j = 0; j < 256; ++j) {
        fits = fits && fits_signed(row[static_cast<usize>(j)], 16);
        out[j] = static_cast<i16>(row[static_cast<usize>(j)]);
      }
    });
    if (!fits) dw.clear();
  }

  // Touch sets: which routers, links and core states the program can write.
  // Everything else is filler pass-through that stays zero for the whole
  // run, so frame resets and axon rotation skip it.
  std::vector<bool> router_touched(mapped.cores.size(), false);
  std::vector<bool> core_active(mapped.cores.size(), false);
  std::vector<bool> link_touched(fabric_.num_links(), false);
  for (const map::ExecOp& op : prog_.ops) {
    router_touched[op.core] = true;
    core_active[op.core] = true;
    if (op.link != noc::kInvalidLink) {
      link_touched[op.link] = true;
      router_touched[fabric_.link(op.link).dst] = true;
    }
  }
  for (const auto& taps : mapped.input_taps) {
    for (const Slot& s : taps) core_active[s.core] = true;
  }
  for (u32 c = 0; c < mapped.cores.size(); ++c) {
    if (router_touched[c]) touched_routers_.push_back(c);
    if (core_active[c]) active_cores_.push_back(c);
  }
  for (u32 l = 0; l < fabric_.num_links(); ++l) {
    if (link_touched[l]) touched_links_.push_back(l);
  }
}

void Simulator::reset() {
  for (const u32 c : active_cores_) {
    CoreState& cs = state_[c];
    cs.local_ps.fill(0);
    cs.potential.fill(0);
    cs.axon_cur = {};
    cs.axon_n1 = {};
    cs.axon_n2 = {};
  }
  fabric_.reset_subset(touched_routers_, touched_links_);
}

i64 Simulator::ldwt_neurons() const {
  i64 n = 0;
  for (const auto& c : mapped_->cores) {
    if (!c.filler) n += c.neuron_mask.popcount();
  }
  return n;
}

void Simulator::run_iteration(i32 iter, const BitVec* input_spikes, SimStats& st) {
  (void)iter;
  const auto& cores = mapped_->cores;
  const i32 ps_bits = mapped_->arch.noc_bits;
  const i32 lps_bits = mapped_->arch.local_ps_bits;
  const i32 pot_bits = mapped_->arch.potential_bits;

  // Advance axon double-buffers (filler cores never receive spikes).
  for (const u32 c : active_cores_) {
    CoreState& cs = state_[c];
    cs.axon_cur = cs.axon_n1;
    cs.axon_n1 = cs.axon_n2;
    cs.axon_n2 = {};
  }
  // Testbench injection: input spikes of this iteration land in axon_n1 and
  // are consumed by depth-1 cores next iteration.
  if (input_spikes != nullptr) {
    for (usize g = 0; g < mapped_->input_taps.size(); ++g) {
      if (!input_spikes->get(g)) continue;
      for (const Slot& s : mapped_->input_taps[g]) {
        bit_set(state_[s.core].axon_n1, s.plane, true);
      }
    }
  }

  const i64 ps_lo = signed_min(ps_bits), ps_hi = signed_max(ps_bits);
  const i64 lps_lo = signed_min(lps_bits), lps_hi = signed_max(lps_bits);
  const i64 pot_lo = signed_min(pot_bits), pot_hi = signed_max(pot_bits);

  // Every op runs as a word-level kernel over its mask's four u64 words:
  // all-ones words take a contiguous 64-lane strip loop (vectorizable),
  // partial words walk set bits. Unmasked planes are never touched.
  for (const map::ExecCycle& cyc : prog_.cycles) {
    for (u32 oi = cyc.begin; oi < cyc.end; ++oi) {
      const map::ExecOp& op = prog_.ops[oi];
      const u32 c = op.core;
      CoreState& cs = state_[c];
      noc::Router& rt = fabric_.router(c);
      st.op_neurons[op.energy_op] += op.mask_pop;
      switch (op.code) {
        case core::OpCode::Acc: {
          const map::MappedCore& mc = cores[c];
          cs.local_ps.fill(0);
          auto& acc = cs.acc;
          acc.fill(0);
          // Weighted-sum gather over *spiking* axons only: the word AND of
          // the axon mask with the current axon register prunes the ~94 %
          // silent slots before the weight walk. Dense cores add their whole
          // precompiled 256-lane row per spiking axon (vectorizable); sparse
          // cores walk the CSR taps.
          const i16* dw = dense_w_[c].empty() ? nullptr : dense_w_[c].data();
          for (int wi = 0; wi < 4; ++wi) {
            const u64 slots = mc.axon_mask.w[static_cast<usize>(wi)];
            st.axon_slots += std::popcount(slots);
            u64 active = slots & cs.axon_cur[static_cast<usize>(wi)];
            st.axon_spikes += std::popcount(active);
            while (active != 0) {
              const u16 a = static_cast<u16>(wi * 64 + std::countr_zero(active));
              active &= active - 1;
              if (dw != nullptr) {
                const i16* row = dw + static_cast<usize>(a) * 256;
                for (int j = 0; j < 256; ++j) acc[static_cast<usize>(j)] += row[j];
              } else {
                const auto [lo, hi] = mc.weights.row(a);
                for (u32 t = lo; t < hi; ++t) {
                  acc[mc.weights.taps[t].first] += mc.weights.taps[t].second;
                }
              }
            }
          }
          i64 sat = 0;
          noc::Router::for_each_masked_strip(mc.neuron_mask.w, [&](int p) {
            cs.local_ps[static_cast<usize>(p)] = static_cast<i16>(
                clamp_count(acc[static_cast<usize>(p)], lps_lo, lps_hi, sat));
          });
          st.saturations += sat;
          break;
        }
        case core::OpCode::PsSum: {
          // In-router adder: OP1 is the running sum (consecutive add) or the
          // neuron core's local PS; OP2 arrives on the $SRC port register.
          i16* sb = rt.sum_buf_data();
          const i16* in = rt.ps_in_data(op.src);
          const i16* one = op.consec ? sb : cs.local_ps.data();
          i64 sat = 0;
          noc::Router::for_each_masked_strip(op.mask, [&](int p) {
            sb[p] = static_cast<i16>(clamp_count(
                static_cast<i64>(one[p]) + in[p], ps_lo, ps_hi, sat));
          });
          st.saturations += sat;
          break;
        }
        case core::OpCode::PsSend: {
          const i16* src = op.from_sum_buf ? rt.sum_buf_data() : cs.local_ps.data();
          if (op.eject) {
            rt.set_eject_masked(op.mask, src);
          } else {
            fabric_.send_ps_masked(op.link, op.mask, src, st.noc);
          }
          break;
        }
        case core::OpCode::PsBypass: {
          fabric_.send_ps_masked(op.link, op.mask, rt.ps_in_data(op.src), st.noc);
          break;
        }
        case core::OpCode::SpkSpike: {
          const map::MappedCore& mc = cores[c];
          const i16* add = op.sum_or_local ? rt.eject_data() : cs.local_ps.data();
          i32* pot = cs.potential.data();
          auto& out = rt.spike_out_words();
          const i64 thr = mc.threshold;
          i64 sat = 0, fired = 0;
          noc::Router::Words fire{};
          noc::Router::for_each_masked_strip(op.mask, [&](int p) {
            i64 v = clamp_count(static_cast<i64>(pot[p]) + add[p],
                                pot_lo, pot_hi, sat);
            const bool f = v >= thr;
            v -= f ? thr : 0;
            fired += f;
            pot[p] = static_cast<i32>(v);
            fire[static_cast<usize>(p) >> 6] |= static_cast<u64>(f) << (p & 63);
          });
          for (int wi = 0; wi < 4; ++wi) {
            out[static_cast<usize>(wi)] =
                (out[static_cast<usize>(wi)] & ~op.mask[static_cast<usize>(wi)]) |
                fire[static_cast<usize>(wi)];
          }
          st.saturations += sat;
          st.spikes_fired += fired;
          break;
        }
        case core::OpCode::SpkSend: {
          fabric_.send_spike_masked(op.link, op.mask, rt.spike_out_words(), st.noc);
          break;
        }
        case core::OpCode::SpkBypass: {
          fabric_.send_spike_masked(op.link, op.mask, rt.spk_in_words(op.src), st.noc);
          break;
        }
        case core::OpCode::SpkRecv:
        case core::OpCode::SpkRecvForward: {
          // Axon delivery OR-accumulates, and the axon buffers are only read
          // at the next iteration boundary, so the write needs no staging.
          auto& axon = op.hold ? cs.axon_n2 : cs.axon_n1;
          const auto& in = rt.spk_in_words(op.src);
          for (int wi = 0; wi < 4; ++wi) {
            axon[static_cast<usize>(wi)] |=
                in[static_cast<usize>(wi)] & op.mask[static_cast<usize>(wi)];
          }
          if (op.code == core::OpCode::SpkRecvForward) {
            fabric_.send_spike_masked(op.link, op.mask, in, st.noc);
          }
          break;
        }
        case core::OpCode::LdWt:
          break;  // weights are preloaded; energy accounted separately
      }
    }
    // Two-phase commit: staged port writes become visible from cycle+1 on.
    // Cycles with no ops need no commit — nothing was staged and nothing
    // reads before the next non-empty cycle.
    fabric_.commit_cycle();
  }
  ++st.iterations;
  st.cycles += mapped_->cycles_per_timestep;
}

FrameResult Simulator::run_frame(const Tensor& image, SimStats* stats,
                                 HardwareTrace* trace) {
  reset();
  const i32 T = mapped_->timesteps;
  const i32 total = T + mapped_->output_depth;
  snn::InputEncoder enc(image, net_->input_scale);

  const auto& out_slots = mapped_->output_slots();
  FrameResult res;
  res.spike_counts.assign(out_slots.size(), 0);
  res.final_potentials.assign(out_slots.size(), 0);
  if (trace != nullptr) {
    trace->units.assign(net_->units.size(), {});
    for (usize u = 0; u < net_->units.size(); ++u) {
      trace->units[u].reserve(static_cast<usize>(T));
    }
  }

  SimStats local;
  local.frames = 1;
  for (i32 k = 0; k < total; ++k) {
    BitVec in;
    const bool have_input = k < T;
    if (have_input) in = enc.step();
    run_iteration(k, have_input ? &in : nullptr, local);

    // Readout: output-unit spikes within its logical window.
    if (k >= mapped_->output_depth) {
      for (usize j = 0; j < out_slots.size(); ++j) {
        if (fabric_.router(out_slots[j].core).spike_out(out_slots[j].plane)) {
          ++res.spike_counts[j];
        }
      }
    }
    // Per-unit traces, re-aligned to logical timesteps.
    if (trace != nullptr) {
      for (usize u = 0; u < net_->units.size(); ++u) {
        const i32 d = mapped_->unit_depth[u];
        if (k >= d && k < d + T) {
          const auto& slots = mapped_->unit_slots[u];
          BitVec bv(slots.size());
          for (usize j = 0; j < slots.size(); ++j) {
            bv.set(j, fabric_.router(slots[j].core).spike_out(slots[j].plane));
          }
          trace->units[u].push_back(std::move(bv));
        }
      }
    }
  }
  for (usize j = 0; j < out_slots.size(); ++j) {
    res.final_potentials[j] = state_[out_slots[j].core].potential[out_slots[j].plane];
  }
  res.predicted = snn::EvalResult::decide(res.spike_counts, res.final_potentials);
  if (stats != nullptr) stats->merge(local);
  return res;
}

double hardware_accuracy(const MappedNetwork& mapped, const snn::SnnNetwork& net,
                         const nn::Dataset& data, usize max_frames, SimStats* stats) {
  const usize n = max_frames == 0 ? data.size() : std::min(max_frames, data.size());
  SJ_REQUIRE(n > 0, "hardware_accuracy: no frames");
  ThreadPool& pool = ThreadPool::global();
  const usize shards = std::min<usize>(n, std::max<usize>(1, pool.num_threads()));
  std::vector<SimStats> shard_stats(shards);
  std::atomic<i64> correct{0};
  pool.parallel_for(shards, [&](usize s) {
    Simulator sim(mapped, net);
    const usize lo = s * n / shards;
    const usize hi = (s + 1) * n / shards;
    for (usize i = lo; i < hi; ++i) {
      const FrameResult r = sim.run_frame(data.images[i], &shard_stats[s]);
      if (r.predicted == data.labels[i]) correct.fetch_add(1, std::memory_order_relaxed);
    }
  });
  if (stats != nullptr) {
    for (const auto& ss : shard_stats) stats->merge(ss);
  }
  return static_cast<double>(correct.load()) / static_cast<double>(n);
}

}  // namespace sj::sim
