#include "sim/simulator.h"

namespace sj::sim {

double hardware_accuracy(const MappedNetwork& mapped, const snn::SnnNetwork& net,
                         const nn::Dataset& data, usize max_frames, SimStats* stats) {
  const usize n = max_frames == 0 ? data.size() : std::min(max_frames, data.size());
  SJ_REQUIRE(n > 0, "hardware_accuracy: no frames");
  Engine engine(mapped, net);
  // Bounded batches: only a chunk of FrameResults is ever live, so a full
  // dataset evaluation does not materialize n results to compute a scalar.
  // Chunking does not affect determinism — per-frame results and stats
  // contributions are independent of how the frames are grouped.
  constexpr usize kChunk = 1024;
  usize correct = 0;
  for (usize base = 0; base < n; base += kChunk) {
    const usize len = std::min(kChunk, n - base);
    const std::vector<FrameResult> results =
        engine.run_batch(std::span<const Tensor>(data.images.data() + base, len), stats);
    for (usize i = 0; i < len; ++i) {
      if (results[i].predicted == data.labels[base + i]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace sj::sim
