#include "serve/server.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "noc/traffic.h"
#include "obs/profile.h"

namespace sj::serve {

namespace {

/// FNV-1a, byte-at-a-time over 64-bit lanes. Not cryptographic — a cache
/// key, like the mapper's own deterministic hashes.
struct Fnv {
  u64 h = 1469598103934665603ull;
  void mix(u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void mix_i(i64 v) { mix(static_cast<u64>(v)); }
};

usize default_workers() {
  const usize env = parse_thread_count(std::getenv("SHENJING_THREADS"));
  return env != 0 ? env : hardware_thread_count();
}

/// One turn in the bounded queue's FIFO admission line. Constructed after a
/// submitter draws its ticket and holds the lock; the destructor passes the
/// head on — also on the throw paths (shutdown, unknown model), so a dead
/// ticket can never jam the line. Runs under the caller's lock, including
/// the notify, which is what keeps head/ticket reads race-free.
struct TicketTurn {
  u64& head;
  std::condition_variable& cv;
  TicketTurn(u64& h, std::condition_variable& c) : head(h), cv(c) {}
  ~TicketTurn() {
    ++head;
    cv.notify_all();
  }
};

}  // namespace

ModelKey model_key(const map::MappedNetwork& mapped, const snn::SnnNetwork& net) {
  Fnv f;
  // SNN-side inputs the engine reads at run time: the input encoder's
  // quantization scale and the train length. Two conversions of one model
  // that differ only here map to identical MappedNetworks but simulate
  // differently, so they must not alias.
  f.mix_i(net.input_scale);
  f.mix_i(net.timesteps);
  f.mix_i(net.weight_bits);
  f.mix(net.units.size());
  f.mix(static_cast<u64>(net.input_size()));
  // The architecture parameters are part of the identity: the same net
  // mapped under different datapath widths or chip geometry simulates
  // differently even when placement, schedule and weights coincide.
  // ArchParams::identity() is the single source of truth for which fields
  // are semantic — the engine's weight-swap gate consumes the same tuple.
  for (const i32 v : mapped.arch.identity()) f.mix_i(v);
  f.mix(mapped.cores.size());
  f.mix_i(mapped.timesteps);
  f.mix_i(mapped.output_depth);
  f.mix_i(mapped.grid_rows);
  f.mix_i(mapped.grid_cols);
  f.mix(mapped.cycles_per_timestep);
  // The optimizer level is identity even when two levels happen to emit the
  // same op stream today: a cached ExecProgram must never be mistaken for
  // the artifact of a different optimization pipeline (hot weight-swaps key
  // on this hash to decide structural compatibility).
  f.mix_i(mapped.opt_level);
  // So is the pipeline flag: the cross-timestep engine changes latency
  // accounting (effective cycles) without changing results, and a swap
  // between pipelined and serial compilations must re-publish, not alias.
  f.mix_i(mapped.pipeline);
  // The op stream and the slot tables are part of the identity: two
  // mappings of the same weights under different mapper configurations are
  // different served artifacts (they route differently), and must not
  // alias to one cache entry.
  f.mix(mapped.schedule.size());
  for (const map::TimedOp& t : mapped.schedule) {
    f.mix((static_cast<u64>(t.cycle) << 32) | t.core);
    for (const u64 w : t.mask.w) f.mix(w);
    f.mix(core::encode(t.op));
  }
  const auto mix_slots = [&f](const std::vector<std::vector<map::Slot>>& tables) {
    f.mix(tables.size());
    for (const auto& table : tables) {
      f.mix(table.size());
      for (const map::Slot& s : table) f.mix((static_cast<u64>(s.core) << 16) | s.plane);
    }
  };
  mix_slots(mapped.input_taps);
  mix_slots(mapped.unit_slots);
  for (const i32 d : mapped.unit_depth) f.mix_i(d);
  for (const map::MappedCore& c : mapped.cores) {
    f.mix_i(c.pos.row);
    f.mix_i(c.pos.col);
    f.mix(static_cast<u64>(c.filler) | (static_cast<u64>(c.spiking) << 1) |
          (static_cast<u64>(c.is_output) << 2));
    f.mix_i(c.threshold);
    f.mix_i(c.spike_hold);
    for (const u64 w : c.axon_mask.w) f.mix(w);
    for (const u64 w : c.neuron_mask.w) f.mix(w);
    for (const u64 w : c.spike_mask.w) f.mix(w);
    f.mix(c.weights.taps.size());
    for (const auto& [plane, weight] : c.weights.taps) {
      f.mix((static_cast<u64>(plane) << 16) | static_cast<u16>(weight));
    }
  }
  return f.h;
}

std::shared_ptr<const Server::Generation> Server::make_generation(
    const map::MappedNetwork& mapped, const snn::SnnNetwork& net, const Generation* donor) {
  // Copy first so the engine's internal pointers target storage owned by
  // the generation itself — the server outlives any caller-held network.
  auto gen = std::make_shared<Generation>();
  gen->mapped = mapped;
  gen->net = net;
  gen->engine = donor == nullptr
                    ? std::make_unique<sim::Engine>(gen->mapped, gen->net)
                    : std::make_unique<sim::Engine>(gen->mapped, gen->net, *donor->engine);
  return gen;
}

Server::Server(ServerOptions options)
    : max_pending_(options.max_pending),
      shard_below_depth_(options.shard_below_depth),
      profile_engine_(options.profile_engine),
      opt_level_(options.opt_level),
      pipeline_(options.pipeline) {
  submitted_ = &registry_.counter("serve.submitted");
  completed_ = &registry_.counter("serve.completed");
  errors_ = &registry_.counter("serve.errors");
  cancelled_ = &registry_.counter("serve.cancelled");
  queue_depth_ = &registry_.gauge("serve.queue_depth");
  in_flight_ = &registry_.gauge("serve.in_flight");
  const usize n = options.workers == 0 ? default_workers() : options.workers;
  workers_.reserve(n);
  for (usize i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { shutdown(DrainMode::kDrain); }

Server::ModelMetrics Server::make_model_metrics(ModelKey key) {
  const std::string hex = strprintf("%016llx", static_cast<unsigned long long>(key));
  ModelMetrics m;
  m.queue_wait_us = &registry_.histogram("serve.queue_wait_us." + hex);
  m.exec_us = &registry_.histogram("serve.exec_us." + hex);
  m.e2e_us = &registry_.histogram("serve.e2e_us." + hex);
  return m;
}

ModelKey Server::load_model(const map::MappedNetwork& mapped, const snn::SnnNetwork& net) {
  SJ_REQUIRE(opt_level_ < 0 || mapped.opt_level == opt_level_,
             "serve: load_model at mapper opt level " +
                 std::to_string(mapped.opt_level) + " but the server admits only level " +
                 std::to_string(opt_level_));
  SJ_REQUIRE(pipeline_ < 0 || mapped.pipeline == pipeline_,
             "serve: load_model with pipeline=" + std::to_string(mapped.pipeline) +
                 " but the server admits only pipeline=" + std::to_string(pipeline_));
  const ModelKey key = model_key(mapped, net);
  std::shared_ptr<const Generation> donor;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    SJ_REQUIRE(accepting_, "serve: load_model after shutdown");
    const auto it = models_.find(key);
    if (it != models_.end()) {
      // Cache hit only when the key still serves this exact content; after
      // a weight swap the key denotes the swapped-in generation, and
      // returning it for the original content would silently serve the
      // wrong weights. Re-publish instead (donor compile: the content
      // hashed to this key, so it is structurally identical to whatever
      // the key currently serves).
      if (it->second.content_key == key) return key;
      donor = it->second.gen;
    } else {
      // Another entry may already serve this exact content under its own
      // key (a weight swap published it there). Generations are immutable,
      // so alias it instead of re-lowering a duplicate engine.
      std::shared_ptr<const Generation> alias;
      for (const auto& [other_key, entry] : models_) {
        if (entry.content_key == key && entry.gen != nullptr) {
          alias = entry.gen;
          break;
        }
      }
      if (alias != nullptr) {  // insert after the scan: no iterator reuse
        ModelEntry& mine = models_[key];
        mine.gen = std::move(alias);
        mine.content_key = key;
        mine.metrics = make_model_metrics(key);
        return key;
      }
    }
  }
  // Compile (lowering is the expensive part) outside the lock so serving
  // traffic is not stalled behind a model load.
  std::shared_ptr<const Generation> gen = make_generation(mapped, net, donor.get());
  {
    const std::lock_guard<std::mutex> lock(mu_);
    SJ_REQUIRE(accepting_, "serve: load_model after shutdown");
    ModelEntry& entry = models_[key];
    if (entry.content_key == key && entry.gen != nullptr) return key;  // lost a benign race
    if (entry.gen != nullptr) ++entry.generation;  // re-publish over a swapped entry
    entry.gen = std::move(gen);
    entry.content_key = key;
    if (entry.metrics.e2e_us == nullptr) entry.metrics = make_model_metrics(key);
  }
  return key;
}

void Server::swap_weights(ModelKey key, const map::MappedNetwork& mapped,
                          const snn::SnnNetwork& net) {
  SJ_REQUIRE(opt_level_ < 0 || mapped.opt_level == opt_level_,
             "serve: swap_weights at mapper opt level " +
                 std::to_string(mapped.opt_level) + " but the server admits only level " +
                 std::to_string(opt_level_));
  SJ_REQUIRE(pipeline_ < 0 || mapped.pipeline == pipeline_,
             "serve: swap_weights with pipeline=" + std::to_string(mapped.pipeline) +
                 " but the server admits only pipeline=" + std::to_string(pipeline_));
  std::shared_ptr<const Generation> donor;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    SJ_REQUIRE(accepting_, "serve: swap_weights after shutdown");
    const auto it = models_.find(key);
    SJ_REQUIRE(it != models_.end(), "serve: swap_weights on unknown model key");
    donor = it->second.gen;
  }
  // The donor compile REQUIREs structural compatibility and reuses the
  // donor's topology + lowered program (no re-lowering).
  std::shared_ptr<const Generation> next = make_generation(mapped, net, donor.get());
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = models_.find(key);
    SJ_REQUIRE(it != models_.end(), "serve: model disappeared during swap");
    it->second.gen = std::move(next);
    ++it->second.generation;
    // The key keeps naming the served slot; record what it now serves so
    // load_model can tell a true cache hit from a swapped-away key.
    it->second.content_key = model_key(mapped, net);
  }
}

std::future<sim::FrameResult> Server::submit(ModelKey key, Tensor frame,
                                             RequestTrace* trace) {
  Request req;
  req.key = key;
  req.frame = std::move(frame);
  req.trace = trace;
  std::future<sim::FrameResult> fut = req.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    std::optional<TicketTurn> turn;
    if (max_pending_ != 0) {
      // FIFO admission: wait for this ticket's turn AND one free slot, so a
      // stream of single frames cannot starve a whole-batch waiter ahead in
      // the line (and vice versa).
      const u64 ticket = ticket_tail_++;
      turn.emplace(ticket_head_, space_cv_);
      space_cv_.wait(lock, [&] {
        return !accepting_ || (ticket_head_ == ticket && queue_.size() < max_pending_);
      });
    }
    SJ_REQUIRE(accepting_, "serve: submit after shutdown");
    const auto it = models_.find(key);
    SJ_REQUIRE(it != models_.end(), "serve: submit to unknown model key");
    req.gen = it->second.gen;  // bind the current generation
    req.metrics = it->second.metrics;
    // Stamp after admission: queue wait measures time in the queue, not
    // time blocked on a full one (that is admission backpressure, visible
    // as submit-side blocking instead).
    req.submit_ns = obs::now_ns();
    if (trace != nullptr) *trace = RequestTrace{.submit_ns = req.submit_ns};
    queue_.push_back(std::move(req));
    queue_depth_->set(static_cast<i64>(queue_.size()));
  }
  submitted_->inc();
  work_cv_.notify_one();
  return fut;
}

std::optional<std::future<sim::FrameResult>> Server::try_submit(
    ModelKey key, Tensor frame, RequestTrace* trace, CompletionHook done) {
  Request req;
  req.key = key;
  req.frame = std::move(frame);
  req.trace = trace;
  req.done = std::move(done);
  std::future<sim::FrameResult> fut = req.promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    // Nonblocking admission: succeed only when we could admit WITHOUT
    // queue-jumping — nobody waiting in the ticket line (head == tail means
    // every issued ticket has retired) and a free slot. Overtaking a blocked
    // batch submitter here would reintroduce exactly the starvation the
    // ticket line exists to prevent.
    if (max_pending_ != 0 &&
        (ticket_head_ != ticket_tail_ || queue_.size() >= max_pending_)) {
      return std::nullopt;
    }
    SJ_REQUIRE(accepting_, "serve: submit after shutdown");
    const auto it = models_.find(key);
    SJ_REQUIRE(it != models_.end(), "serve: submit to unknown model key");
    req.gen = it->second.gen;
    req.metrics = it->second.metrics;
    req.submit_ns = obs::now_ns();
    if (trace != nullptr) *trace = RequestTrace{.submit_ns = req.submit_ns};
    queue_.push_back(std::move(req));
    queue_depth_->set(static_cast<i64>(queue_.size()));
  }
  submitted_->inc();
  work_cv_.notify_one();
  return fut;
}

std::vector<std::future<sim::FrameResult>> Server::submit_batch(
    ModelKey key, std::span<const Tensor> frames) {
  std::vector<std::future<sim::FrameResult>> futures;
  futures.reserve(frames.size());
  if (frames.empty()) return futures;
  // A batch that can never fit a bounded queue must fail before anything is
  // queued — blocking forever on space that cannot appear helps nobody.
  SJ_REQUIRE(max_pending_ == 0 || frames.size() <= max_pending_,
             "serve: batch of " + std::to_string(frames.size()) +
                 " exceeds max_pending " + std::to_string(max_pending_));
  // Build every request — frame copies, promises — outside the lock, then
  // admit the whole batch in one critical section with one generation bind.
  // On a bounded queue the admission is transactional: wait until the batch
  // fits in its entirety, so concurrent submitters can never interleave a
  // half-admitted batch (ROADMAP "bounded-queue batch admission").
  std::vector<Request> reqs(frames.size());
  for (usize i = 0; i < frames.size(); ++i) {
    reqs[i].key = key;
    reqs[i].frame = frames[i];
    futures.push_back(reqs[i].promise.get_future());
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    std::optional<TicketTurn> turn;
    if (max_pending_ != 0) {
      // Same FIFO line as submit(): head-of-line waits until the WHOLE
      // batch fits. Later submitters queue behind it rather than refilling
      // every slot a worker frees (which would starve the batch forever).
      const u64 ticket = ticket_tail_++;
      turn.emplace(ticket_head_, space_cv_);
      space_cv_.wait(lock, [&] {
        return !accepting_ ||
               (ticket_head_ == ticket && queue_.size() + frames.size() <= max_pending_);
      });
    }
    SJ_REQUIRE(accepting_, "serve: submit after shutdown");
    const auto it = models_.find(key);
    SJ_REQUIRE(it != models_.end(), "serve: submit to unknown model key");
    const u64 now = obs::now_ns();  // one admission instant for the batch
    for (Request& req : reqs) {
      req.gen = it->second.gen;
      req.metrics = it->second.metrics;
      req.submit_ns = now;
      queue_.push_back(std::move(req));
    }
    queue_depth_->set(static_cast<i64>(queue_.size()));
  }
  submitted_->inc(static_cast<i64>(frames.size()));
  if (frames.size() == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }
  return futures;
}

sim::SimStats Server::stats(ModelKey key) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(key);
  SJ_REQUIRE(it != models_.end(), "serve: stats for unknown model key");
  return it->second.stats;
}

sim::SimStats Server::take_stats(ModelKey key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(key);
  SJ_REQUIRE(it != models_.end(), "serve: take_stats for unknown model key");
  // Fold into the lifetime roll-up first so metrics_json stays monotone
  // across drains (clients taking their tally must not erase telemetry).
  it->second.lifetime.merge(it->second.stats);
  sim::SimStats out = std::move(it->second.stats);
  it->second.stats = sim::SimStats{};
  return out;
}

usize Server::num_models() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return models_.size();
}

usize Server::pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void Server::worker_loop() {
  // This worker's long-lived context pool: one SimContext per model it has
  // served. Contexts survive weight swaps — the swap-compatibility check
  // guarantees identical state shapes, and every frame starts from a full
  // reset, so a context built against generation g runs generation g+1
  // frames bit-exactly.
  std::unordered_map<ModelKey, std::unique_ptr<sim::SimContext>> contexts;
  for (;;) {
    Request req;
    usize depth_after_claim = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      req = std::move(queue_.front());
      queue_.pop_front();
      depth_after_claim = queue_.size();
      queue_depth_->set(static_cast<i64>(depth_after_claim));
    }
    const u64 t_claim = obs::now_ns();
    in_flight_->add(1);
    // notify_all, not _one: submitters wait on heterogeneous predicates (a
    // batch needs room for all of itself, a single frame for one slot), so
    // a single wake-up could land on a waiter whose predicate still fails
    // and leave a satisfiable one asleep until the next claim.
    if (max_pending_ != 0) space_cv_.notify_all();
    // Latency/throughput policy: a shallow queue means workers are about to
    // idle — spend them on the claimed frame's chip shards instead. A deep
    // queue keeps every worker on its own frame (run_frame_sharded is
    // bit-identical to run_frame, so the policy never shows in results).
    const bool sharded = shard_below_depth_ != 0 &&
                         depth_after_claim < shard_below_depth_ &&
                         req.gen->engine->model().shard_plan().num_shards() > 1;

    auto it = contexts.find(req.key);
    if (it == contexts.end()) {
      it = contexts
               .emplace(req.key, std::make_unique<sim::SimContext>(
                                     req.gen->engine->make_context()))
               .first;
    }
    sim::SimContext& ctx = *it->second;
    ctx.set_profiling(profile_engine_);
    try {
      const u64 t_exec0 = obs::now_ns();
      sim::FrameResult res = sharded
                                 ? req.gen->engine->run_frame_sharded(ctx, req.frame)
                                 : req.gen->engine->run_frame(ctx, req.frame);
      const u64 t_exec1 = obs::now_ns();
      {
        const std::lock_guard<std::mutex> lock(mu_);
        const auto mit = models_.find(req.key);
        // The model cache never shrinks, so the entry must exist; drain
        // before fulfilling the promise so a client that awaits the future
        // observes its own frame in the tally. drain_stats is the
        // allocation-free one-walk drain (~1 us against a ~0.5 ms frame; a
        // lazy worker-local tally was tried and reverted — it cannot make
        // the tally complete for a reader that wakes on the last future
        // without re-adding a flush handshake at least this expensive).
        if (mit != models_.end()) {
          ctx.drain_stats(mit->second.stats);
          if (profile_engine_) ctx.drain_profile(mit->second.profile);
        } else {
          ctx.take_stats();
        }
      }
      // Record telemetry before fulfilling, mirroring the stats guarantee:
      // a client that awaits the future sees its own request in the
      // histograms and counters.
      const u64 t_done = obs::now_ns();
      if (req.metrics.e2e_us != nullptr) {
        req.metrics.queue_wait_us->record(
            static_cast<i64>((t_claim - req.submit_ns) / 1000));
        req.metrics.exec_us->record(static_cast<i64>((t_exec1 - t_exec0) / 1000));
        req.metrics.e2e_us->record(static_cast<i64>((t_done - req.submit_ns) / 1000));
      }
      completed_->inc();
      if (req.trace != nullptr) {
        req.trace->claim_ns = t_claim;
        req.trace->exec_begin_ns = t_exec0;
        req.trace->exec_end_ns = t_exec1;
        req.trace->done_ns = t_done;
      }
      req.promise.set_value(std::move(res));
      if (req.done) req.done();
    } catch (...) {
      // A throwing frame contributes nothing: discard the partial tally so
      // later frames on this context report exactly their own work. Failed
      // frames stay out of the latency histograms too — they would skew
      // percentiles with times that measured nothing.
      ctx.take_stats();
      if (profile_engine_) {
        obs::PhaseProfile scrap;
        ctx.drain_profile(scrap);
      }
      errors_->inc();
      if (req.trace != nullptr) {
        req.trace->claim_ns = t_claim;
        req.trace->exec_begin_ns = req.trace->exec_end_ns = req.trace->done_ns =
            obs::now_ns();
      }
      req.promise.set_exception(std::current_exception());
      if (req.done) req.done();
    }
    in_flight_->add(-1);
  }
}

void Server::shutdown(DrainMode mode) {
  std::vector<std::thread> workers;
  std::deque<Request> cancelled;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    stop_ = true;
    if (mode == DrainMode::kCancel) {
      cancelled.swap(queue_);
      queue_depth_->set(0);
    }
    workers.swap(workers_);  // claim the join exactly once (idempotence)
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& w : workers) w.join();
  cancelled_->inc(static_cast<i64>(cancelled.size()));
  for (Request& r : cancelled) {
    r.promise.set_exception(std::make_exception_ptr(
        Cancelled("serve: request cancelled by shutdown", __FILE__, __LINE__)));
    // The completion contract holds on the cancel path too: a network
    // front-end must learn the future is ready (with an exception) or its
    // client would wait forever on a response that is never coming.
    if (r.done) r.done();
  }
}

bool Server::accepting() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return accepting_;
}

json::Value Server::metrics_json() const {
  // Copy everything JSON needs under the lock, build the document outside
  // it: TrafficReport::build walks every link and must not stall workers.
  struct ModelView {
    ModelKey key = 0;
    u64 generation = 0;
    sim::SimStats stats;
    obs::PhaseProfile profile;
    std::shared_ptr<const Generation> gen;
  };
  std::vector<ModelView> views;
  usize pending = 0;
  usize workers = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    views.reserve(models_.size());
    for (const auto& [key, entry] : models_) {
      ModelView v;
      v.key = key;
      v.generation = entry.generation;
      v.stats = entry.lifetime;        // monotone roll-up ...
      v.stats.merge(entry.stats);      // ... plus the undrained tally
      v.profile = entry.profile;
      v.gen = entry.gen;
      views.push_back(std::move(v));
    }
    pending = queue_.size();
    workers = workers_.size();
  }
  std::sort(views.begin(), views.end(),
            [](const ModelView& a, const ModelView& b) { return a.key < b.key; });

  json::Value root;
  root.set("workers", workers);
  root.set("pending", pending);
  root.set("num_models", views.size());
  root.set("metrics", registry_.to_json());
  json::Array models;
  for (const ModelView& v : views) {
    json::Value m;
    m.set("key", strprintf("%016llx", static_cast<unsigned long long>(v.key)));
    m.set("generation", static_cast<i64>(v.generation));
    m.set("frames", v.stats.frames);
    m.set("iterations", v.stats.iterations);
    m.set("cycles", static_cast<i64>(v.stats.cycles));
    m.set("effective_cycles", static_cast<i64>(v.stats.effective_cycles));
    m.set("spikes_fired", v.stats.spikes_fired);
    m.set("switching_activity", v.stats.switching_activity());
    if (v.gen != nullptr) {
      const noc::TrafficReport rep =
          noc::TrafficReport::build(v.gen->engine->model().topology(), v.stats.noc,
                                    v.stats.cycles, v.stats.iterations);
      m.set("noc", rep.utilization_json());
    }
    if (!v.profile.empty()) m.set("engine_profile", v.profile.to_json());
    models.push_back(std::move(m));
  }
  root.set("models", std::move(models));
  return root;
}

double serving_accuracy(Server& server, ModelKey key, const nn::Dataset& data,
                        usize max_frames, sim::SimStats* stats) {
  const usize n = max_frames == 0 ? data.size() : std::min(max_frames, data.size());
  SJ_REQUIRE(n > 0, "serving_accuracy: no frames");
  // Bounded in-flight chunks, like sim::hardware_accuracy: only a chunk of
  // futures is ever live, and chunking cannot affect the results (each
  // request is independent and deterministic). A bounded server caps the
  // chunk at its queue bound — submit_batch admits whole batches or rejects
  // outright, so an oversized chunk would throw instead of trickling in.
  constexpr usize kChunk = 1024;
  const usize chunk =
      server.max_pending() == 0 ? kChunk : std::min(kChunk, server.max_pending());
  usize correct = 0;
  for (usize base = 0; base < n; base += chunk) {
    const usize len = std::min(chunk, n - base);
    std::vector<std::future<sim::FrameResult>> futs = server.submit_batch(
        key, std::span<const Tensor>(data.images.data() + base, len));
    for (usize i = 0; i < len; ++i) {
      if (futs[i].get().predicted == data.labels[base + i]) ++correct;
    }
  }
  if (stats != nullptr) stats->merge(server.take_stats(key));
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace sj::serve
