// Async serving front-end over sim::Engine (ROADMAP "async serving
// front-end" + "multi-model engine cache").
//
// The batch engine (PR 3) answers "how fast can one caller push a fixed
// batch"; this subsystem answers the question the paper's energy-per-frame
// pitch actually poses: a long-lived accelerator serving an *open* request
// stream from many clients. SpiNNaker-class systems frame their hardware the
// same way — a standing multi-workload substrate, not a batch job.
//
//   Server
//     models_: ModelKey -> { shared_ptr<Generation>, SimStats }
//       Generation = owned MappedNetwork + SnnNetwork copies + sim::Engine
//       (immutable once published; weight swaps publish a NEW generation)
//     queue_:  FIFO of requests, each bound at submit() time to the
//              generation it will run against
//     workers_: long-lived threads, each owning one SimContext per model it
//              has served (the per-worker context pool)
//
// Clients submit() frames (or submit_batch() a span) and receive
// std::futures to poll or await. Workers pull requests in FIFO order,
// execute Engine::run_frame on their own context, merge the frame's stats
// into the model's tally, then fulfil the future.
//
// Determinism: every frame starts from a full context reset, so a request's
// FrameResult is bit-identical to a single-context sim::Simulator run of
// the same frame no matter which worker ran it or how requests interleaved.
// Stats merging is integer-additive and therefore order-independent: the
// model tally equals the serial accumulation bit for bit.
//
// Weight swap (without re-lowering): swap_weights() compiles the new
// network against the current generation as donor — reusing its NocTopology
// and lowered ExecProgram, rebuilding only the weight-derived dense rows —
// and atomically publishes the new generation under the same ModelKey.
// Requests already queued finish on the generation they were bound to;
// later submissions see the new weights. Worker contexts carry over: the
// swap-compatibility check guarantees identical state shapes, and the
// per-frame reset erases all history.
//
// Telemetry (ISSUE 6 / ROADMAP "Serving QoS + observability"): the server
// owns an obs::Registry. Every request is stamped at submit/claim/exec
// start/exec end, so queue-wait, execution and end-to-end latency are
// separately attributable — recorded into per-model histograms
// (serve.{queue_wait,exec,e2e}_us.<key>) before the future becomes ready,
// with queue-depth and in-flight gauges updated at the submit/claim/fulfil
// transitions. metrics_json() adds per-model lifetime stats and a live
// TrafficReport-derived per-link NoC utilization snapshot; pair it with
// obs::MetricsDumper for the SHENJING_METRICS export loop.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nn/dataset.h"
#include "obs/metrics.h"
#include "sim/engine.h"

namespace sj::serve {

/// Content hash identifying a loaded model: structure + weights at load
/// time. Stable for the lifetime of the served slot — weight swaps change
/// the generation underneath, not the key.
using ModelKey = u64;

/// FNV-1a over everything the engine's behaviour depends on: architecture
/// parameters, grid/placement/masks, the full op stream and slot tables,
/// weights/thresholds, and the SNN-side simulation inputs (input encoding
/// scale, timesteps). Deterministic across processes; two structurally
/// identical trainings hash differently iff their weights differ.
ModelKey model_key(const map::MappedNetwork& mapped, const snn::SnnNetwork& net);

/// Thrown (through the request future) when shutdown(DrainMode::kCancel)
/// drops a queued request before any worker picked it up.
class Cancelled : public Error {
 public:
  using Error::Error;
};

/// Per-request trace: steady-clock ns (obs::now_ns) stamped at each
/// lifecycle transition. Pass one to submit() to observe a single request;
/// the worker writes claim/exec/done before the future becomes ready, so
/// after future.get() every field is set and monotone
/// (submit <= claim <= exec_begin <= exec_end <= done).
struct RequestTrace {
  u64 submit_ns = 0;      // enqueued (after admission)
  u64 claim_ns = 0;       // a worker dequeued it; claim-submit = queue wait
  u64 exec_begin_ns = 0;  // engine frame started
  u64 exec_end_ns = 0;    // engine frame finished
  u64 done_ns = 0;        // stats + metrics recorded; future about to fire
};

struct ServerOptions {
  /// Worker threads (long-lived SimContext owners). 0 = one per hardware
  /// thread, honoring SHENJING_THREADS like ThreadPool::global().
  usize workers = 0;
  /// Bound on queued (not yet claimed) requests. submit() blocks until a
  /// worker frees space; submit_batch() reserves space for the whole batch
  /// transactionally (and rejects batches larger than the bound outright).
  /// 0 = unbounded.
  usize max_pending = 0;
  /// Latency/throughput policy for idle capacity: when the queue depth
  /// observed at claim time is *below* this, the worker runs its frame
  /// through Engine::run_frame_sharded, fanning the model's chip shards
  /// over the global ThreadPool — idle workers speed up the one frame in
  /// flight. At or above it, frames run whole so workers stay on
  /// independent frames (throughput). Results are bit-identical either way
  /// (the sharded path's contract); single-chip models always run whole.
  /// 0 disables sharded serving.
  usize shard_below_depth = 0;
  /// Enables engine phase profiling on every worker context
  /// (sim::SimContext::set_profiling): per-model obs::PhaseProfile tallies
  /// surface in metrics_json() under "engine_profile". Off by default —
  /// profiled frames pay clock reads around every shard phase.
  bool profile_engine = false;
  /// Admission policy for the mapper optimization level: when >= 0,
  /// load_model() and swap_weights() reject MappedNetworks whose
  /// `opt_level` differs — a fleet that pins its serving artifacts to one
  /// optimization pipeline fails fast on a stray compile instead of
  /// hosting mixed programs. -1 (default) admits any level; cache entries
  /// still never alias across levels (model_key hashes the level).
  i32 opt_level = -1;
  /// Admission policy for the cross-timestep pipelined engine, same shape
  /// as `opt_level`: when >= 0, load_model() and swap_weights() reject
  /// MappedNetworks whose `pipeline` flag differs, pinning the fleet to one
  /// frame-loop variant. -1 (default) admits both; model_key hashes the
  /// flag, so pipelined and serial compilations never alias regardless.
  i32 pipeline = -1;
};

/// How shutdown() treats requests still sitting in the queue.
enum class DrainMode : u8 {
  kDrain,   // finish everything already submitted, then stop
  kCancel,  // fail queued-but-unstarted requests with serve::Cancelled
};

/// A long-lived, thread-safe serving front-end holding many compiled models.
/// All public methods are safe to call from any thread. The destructor
/// drains outstanding requests (shutdown(kDrain)); call
/// shutdown(DrainMode::kCancel) first for a fast exit.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Compiles `mapped`/`net` (copies are taken — the server is
  /// self-contained) and caches the engine under its content hash. Loading
  /// content that is *currently served* is a cache hit: the existing key
  /// returns and nothing is recompiled. Re-loading content whose key was
  /// weight-swapped to something else re-publishes that content under its
  /// key (a donor compile against the served generation — effectively a
  /// rollback), so the returned key always serves the content passed in.
  ModelKey load_model(const map::MappedNetwork& mapped, const snn::SnnNetwork& net);

  /// Installs new weights for `key` without re-lowering: `mapped` must be
  /// structurally identical to the served network (same grid, placement,
  /// masks, schedule shape; see the sim::Engine donor compile). In-flight
  /// and already-queued requests finish on the old generation; submissions
  /// after the call serve the new weights. The model's stats tally carries
  /// across the swap.
  void swap_weights(ModelKey key, const map::MappedNetwork& mapped,
                    const snn::SnnNetwork& net);

  /// Enqueues one frame against `key`'s current generation. The future
  /// yields the FrameResult (or rethrows the frame's error). Blocks only
  /// when ServerOptions::max_pending is set and the queue is full.
  /// `trace`, when given, must outlive the future and is fully stamped
  /// before the future becomes ready (see RequestTrace).
  std::future<sim::FrameResult> submit(ModelKey key, Tensor frame,
                                       RequestTrace* trace = nullptr);

  /// Called by the worker that finished a request, AFTER the future became
  /// ready (value or exception) and after stats/telemetry were recorded —
  /// and by shutdown(kCancel) for requests it cancels. Runs on a worker (or
  /// the shutdown caller's) thread: keep it cheap and non-blocking. The
  /// network front-end's hook posts to its event loop through an eventfd, so
  /// engine workers never touch a socket.
  using CompletionHook = std::function<void()>;

  /// Nonblocking admission for network front-ends: like submit(), but when
  /// the bounded queue is full (or other submitters are already blocked in
  /// the FIFO ticket line ahead of us) it returns nullopt instead of
  /// blocking — an event-loop thread must never sleep on queue space; it
  /// answers the client with a "busy" error frame and relies on
  /// connection-level backpressure to slow the socket down. Still throws on
  /// unknown model keys and after shutdown, like submit().
  std::optional<std::future<sim::FrameResult>> try_submit(
      ModelKey key, Tensor frame, RequestTrace* trace = nullptr,
      CompletionHook done = nullptr);

  /// Enqueues every frame of `frames` in order; futures index like the span.
  /// On a bounded server the batch is admitted *transactionally*: the call
  /// blocks until the queue has room for all of it, then enqueues it in one
  /// critical section (no interleaving with other batches' admission), so a
  /// batch is never half-admitted. Batches larger than max_pending can
  /// never fit and are rejected with an Error before anything is queued.
  std::vector<std::future<sim::FrameResult>> submit_batch(ModelKey key,
                                                          std::span<const Tensor> frames);

  /// Stats accrued by completed requests of `key` (copy / drain). A
  /// request's stats are merged before its future becomes ready, so after
  /// future.get() the tally includes that frame.
  sim::SimStats stats(ModelKey key) const;
  sim::SimStats take_stats(ModelKey key);

  /// The server's metric store: serve.submitted/completed/errors/cancelled
  /// counters, serve.queue_depth / serve.in_flight gauges, and per-model
  /// serve.{queue_wait,exec,e2e}_us.<016x-key> latency histograms. Safe to
  /// snapshot from any thread while serving.
  const obs::Registry& registry() const { return registry_; }
  /// Mutable registry access for co-located subsystems (the net front-end
  /// registers its net.* counters/histograms here so one metrics_json dump
  /// — and the router's load poll — sees the whole process).
  obs::Registry& registry() { return registry_; }

  /// True until shutdown() — the net tier's pong/drain signal.
  bool accepting() const;

  /// One self-describing JSON document for dashboards and the
  /// SHENJING_METRICS dumper: the registry snapshot plus, per model, the
  /// lifetime SimStats roll-up (monotone across take_stats) and a live
  /// noc::TrafficReport::utilization_json() per-link utilization snapshot;
  /// engine phase profiles appear when ServerOptions::profile_engine is on.
  json::Value metrics_json() const;

  usize num_workers() const { return workers_.size(); }
  /// The queue bound (0 = unbounded) — batch submitters size chunks to it.
  usize max_pending() const { return max_pending_; }
  usize num_models() const;
  /// Requests submitted but not yet claimed by a worker.
  usize pending() const;

  /// Stops the server: no further submissions are accepted, workers finish
  /// per `mode`, and every outstanding future becomes ready — with its
  /// result (kDrain) or a serve::Cancelled error (kCancel; requests a
  /// worker already claimed still complete normally, and their stats still
  /// count, so no partial tallies are lost either way). Idempotent; the
  /// model cache and its stats remain readable afterwards.
  void shutdown(DrainMode mode = DrainMode::kDrain);

 private:
  /// One immutable compiled artifact: the server-owned network copies and
  /// the engine lowered against them. Never mutated after publication —
  /// weight swaps build a successor and swap the shared_ptr.
  struct Generation {
    map::MappedNetwork mapped;
    snn::SnnNetwork net;
    std::unique_ptr<sim::Engine> engine;  // points into mapped/net above
  };

  /// A model's latency histograms, registered once at entry creation. The
  /// pointers are stable (Registry never erases); Requests carry a copy so
  /// workers record without re-resolving names.
  struct ModelMetrics {
    obs::Histogram* queue_wait_us = nullptr;
    obs::Histogram* exec_us = nullptr;
    obs::Histogram* e2e_us = nullptr;
  };

  struct ModelEntry {
    std::shared_ptr<const Generation> gen;
    sim::SimStats stats;
    /// Monotone roll-up: take_stats folds the drained tally in here first,
    /// so metrics_json (lifetime + stats) never goes backwards even while
    /// benches drain the additive tally.
    sim::SimStats lifetime;
    /// Accrued engine phase profiles (ServerOptions::profile_engine).
    obs::PhaseProfile profile;
    ModelMetrics metrics;
    u64 generation = 0;      // bumped by swap_weights
    ModelKey content_key = 0;  // hash of the *current* generation's content
  };

  struct Request {
    ModelKey key = 0;
    std::shared_ptr<const Generation> gen;  // bound at submit time
    Tensor frame;
    std::promise<sim::FrameResult> promise;
    u64 submit_ns = 0;
    RequestTrace* trace = nullptr;  // optional caller-observed trace
    ModelMetrics metrics;           // copied from the entry at submit
    CompletionHook done;            // fired after the future becomes ready
  };

  static std::shared_ptr<const Generation> make_generation(
      const map::MappedNetwork& mapped, const snn::SnnNetwork& net,
      const Generation* donor);

  /// Registers (get-or-create) the per-model histograms for `key`.
  ModelMetrics make_model_metrics(ModelKey key);

  void worker_loop();

  const usize max_pending_;
  const usize shard_below_depth_;
  const bool profile_engine_;
  const i32 opt_level_;  // admission policy; -1 admits any level
  const i32 pipeline_;   // admission policy; -1 admits both frame loops
  // The metric store and the hot-path handles into it. Declared before
  // workers_ so it outlives the worker threads on destruction. Lock order:
  // the registry's own mutex is taken either alone (snapshots, record paths
  // are lock-free) or nested inside mu_ (registration); never mu_ inside it.
  obs::Registry registry_;
  obs::Counter* submitted_ = nullptr;
  obs::Counter* completed_ = nullptr;
  obs::Counter* errors_ = nullptr;
  obs::Counter* cancelled_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* in_flight_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stopping
  std::condition_variable space_cv_;  // submitters: bounded queue has room
  // FIFO admission tickets for the bounded queue: a submitter (single frame
  // or whole batch) enqueues only when it is at the head of the ticket line
  // AND its whole payload fits. Without the line, a whole-batch waiter
  // (which needs several slots at once) could starve forever behind a
  // stream of single submitters each refilling the one slot a worker frees.
  u64 ticket_tail_ = 0;  // next ticket to hand out
  u64 ticket_head_ = 0;  // ticket currently allowed to admit
  std::deque<Request> queue_;
  std::unordered_map<ModelKey, ModelEntry> models_;
  std::vector<std::thread> workers_;
  bool accepting_ = true;
  bool stop_ = false;
};

/// Accuracy of `key`'s model over (a prefix of) a dataset, evaluated
/// through the serving path: every frame submitted as its own request, all
/// futures awaited — the serving-side counterpart of
/// sim::hardware_accuracy, used by evaluators to exercise the server.
/// `stats`, when given, receives the model's tally drained after the run
/// (take_stats): exactly this run's stats when no other client used the
/// model concurrently.
double serving_accuracy(Server& server, ModelKey key, const nn::Dataset& data,
                        usize max_frames = 0, sim::SimStats* stats = nullptr);

}  // namespace sj::serve
